"""Tests for the node model: cost model, interconnect, streams, host, trace."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import H800, SimConfig
from repro.errors import SimulationError
from repro.sim.costmodel import CostModel
from repro.sim.engine import Join, Timeout
from repro.sim.machine import Machine
from repro.sim.trace import Trace, intersect_time, merge_intervals, total_time


# ---------------------------------------------------------------------------
# cost model
# ---------------------------------------------------------------------------

def test_tile_efficiency_bounds_and_monotonicity():
    cm = CostModel(H800)
    assert cm.tile_efficiency(128, 128, 64) == pytest.approx(1.0)
    assert cm.tile_efficiency(16, 16, 16) >= cm.MIN_TILE_EFFICIENCY
    assert cm.tile_efficiency(64, 128, 64) < cm.tile_efficiency(128, 128, 64)
    assert cm.tile_efficiency(128, 128, 16) < cm.tile_efficiency(128, 128, 64)


@given(st.sampled_from([64, 128, 256]), st.sampled_from([64, 128, 256]),
       st.sampled_from([512, 1024, 4096]))
@settings(max_examples=30, deadline=None)
def test_gemm_tile_time_scales_with_depth(bm, bn, k):
    cm = CostModel(H800)
    t1 = cm.gemm_tile_time(bm, bn, k).compute
    t2 = cm.gemm_tile_time(bm, bn, 2 * k).compute
    assert t2 > t1
    assert t2 == pytest.approx(2 * t1, rel=0.01)


def test_gemm_monolithic_wave_quantization():
    cm = CostModel(H800)
    # one extra tile beyond a full wave costs ~a full extra wave
    full = cm.gemm_time_monolithic(128 * 132, 128, 1024, n_sms=132)
    plus = cm.gemm_time_monolithic(128 * 133, 128, 1024, n_sms=132)
    assert plus > full * 1.5


def test_gemm_monolithic_more_sms_faster():
    cm = CostModel(H800)
    slow = cm.gemm_time_monolithic(8192, 4096, 4096, n_sms=64)
    fast = cm.gemm_time_monolithic(8192, 4096, 4096, n_sms=132)
    assert fast < slow


def test_gemm_rejects_bad_dims():
    cm = CostModel(H800)
    with pytest.raises(ValueError):
        cm.gemm_tile_time(0, 128, 128)
    with pytest.raises(ValueError):
        cm.gemm_time_monolithic(128, 128, 128, n_sms=0)


def test_flash_step_reasonable():
    cm = CostModel(H800)
    t = cm.flash_step_time(128, 128, 128)
    assert 0 < t < 1e-4
    assert cm.flash_step_time(128, 128, 256) > t


def test_atomic_latencies():
    cm = CostModel(H800)
    assert cm.atomic_latency(remote=True) > cm.atomic_latency(remote=False)


# ---------------------------------------------------------------------------
# interconnect
# ---------------------------------------------------------------------------

def test_interconnect_local_transfer_free():
    m = Machine(SimConfig(world_size=2))
    start, arrival = m.interconnect.reserve(0, 0, 1e9)
    assert start == arrival == 0.0


def test_interconnect_protocol_efficiencies():
    m = Machine(SimConfig(world_size=2))
    t_p2p = m.interconnect.min_transfer_time(0, 1, 1e9, "p2p")
    t_nccl = m.interconnect.min_transfer_time(0, 1, 1e9, "nccl")
    t_rs = m.interconnect.min_transfer_time(0, 1, 1e9, "nccl_rs")
    assert t_p2p < t_nccl
    assert t_rs < t_nccl
    with pytest.raises(SimulationError):
        m.interconnect.min_transfer_time(0, 1, 1e9, "smoke-signals")


def test_interconnect_inter_node_path_slower():
    m = Machine(SimConfig(world_size=4, n_nodes=2))
    # ranks 0,1 on node 0; ranks 2,3 on node 1
    intra = m.interconnect.min_transfer_time(0, 1, 1e8)
    inter = m.interconnect.min_transfer_time(0, 2, 1e8)
    assert inter > intra


def test_interconnect_per_pipe_packing():
    """Independent per-pipe reservation keeps each pipe contiguous even
    when many fine-grained transfers interleave across pairs."""
    m = Machine(SimConfig(world_size=4))

    def puller(rank):
        for i in range(12):
            src = (rank + 1 + i % 3) % 4
            yield m.interconnect.transfer(src, rank, 1e6)

    m.spawn_per_rank(puller, "pull")
    total = m.run()
    ingress = m.interconnect.ingress[0]
    # each rank moves 12 MB through its ingress; the run should finish in
    # about that serialized time, not multiples of it
    assert total < ingress.busy_time * 1.5


def test_interconnect_validates_ranks():
    m = Machine(SimConfig(world_size=2))
    with pytest.raises(SimulationError):
        m.interconnect.reserve(0, 5, 10)


# ---------------------------------------------------------------------------
# streams / host / machine
# ---------------------------------------------------------------------------

def test_stream_serializes_work():
    m = Machine(SimConfig(world_size=1))
    s = m.stream(0)
    log = []

    def op(name, d):
        yield Timeout(d)
        log.append((name, m.now))

    s.enqueue(op("a", 2.0))
    s.enqueue(op("b", 1.0))
    m.run()
    assert log == [("a", pytest.approx(2.0)), ("b", pytest.approx(3.0))]


def test_stream_start_delay_models_launch():
    m = Machine(SimConfig(world_size=1))
    s = m.stream(0)

    def op():
        return m.now
        yield  # pragma: no cover

    p = s.enqueue(op(), start_delay=5e-6)
    m.run()
    assert p.result == pytest.approx(5e-6)


def test_streams_run_concurrently():
    m = Machine(SimConfig(world_size=1))
    a, b = m.stream(0, "a"), m.stream(0, "b")
    ends = []

    def op():
        yield Timeout(1.0)
        ends.append(m.now)

    a.enqueue(op())
    b.enqueue(op())
    m.run()
    assert ends == [pytest.approx(1.0), pytest.approx(1.0)]


def test_stream_wait_for_cross_stream_dependency():
    m = Machine(SimConfig(world_size=1))
    a, b = m.stream(0, "a"), m.stream(0, "b")

    def slow():
        yield Timeout(3.0)

    def fast():
        return m.now
        yield  # pragma: no cover

    p_slow = a.enqueue(slow())
    b.wait_for(p_slow)
    p = b.enqueue(fast())
    m.run()
    assert p.result == pytest.approx(3.0)


def test_host_launch_and_sync_cost():
    m = Machine(SimConfig(world_size=1))
    host = m.hosts[0]
    s = m.stream(0)
    spec = m.config.spec

    def kernel():
        yield Timeout(1e-3)

    def orchestrate():
        proc = yield from host.launch(s, kernel())
        yield from host.sync(proc)
        return m.now

    p = m.spawn(orchestrate())
    m.run()
    expected = spec.kernel_launch_overhead + 1e-3 + spec.host_sync_overhead
    assert p.result == pytest.approx(expected)


def test_machine_guards_reuse():
    m = Machine(SimConfig(world_size=1))
    m.run()
    with pytest.raises(SimulationError):
        m.run()


def test_machine_rank_bounds():
    m = Machine(SimConfig(world_size=2))
    with pytest.raises(SimulationError):
        m.device(2)


# ---------------------------------------------------------------------------
# trace
# ---------------------------------------------------------------------------

def test_merge_and_total():
    spans = [(0.0, 1.0), (0.5, 2.0), (3.0, 4.0)]
    assert merge_intervals(spans) == [(0.0, 2.0), (3.0, 4.0)]
    assert total_time(spans) == pytest.approx(3.0)


def test_intersect_time():
    a = [(0.0, 2.0), (4.0, 6.0)]
    b = [(1.0, 5.0)]
    assert intersect_time(a, b) == pytest.approx(2.0)


@given(st.lists(st.tuples(st.floats(0, 100), st.floats(0, 100)), max_size=30))
@settings(max_examples=50, deadline=None)
def test_merge_intervals_properties(raw):
    spans = [(min(a, b), max(a, b)) for a, b in raw]
    merged = merge_intervals(spans)
    # disjoint and sorted
    for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
        assert e1 < s2
    # union preserved: every original span covered
    for s, e in spans:
        if e > s:
            assert any(ms <= s and e <= me for ms, me in merged)


def test_trace_overlap_and_categories():
    tr = Trace()
    tr.record(0, "compute", "gemm", 0.0, 2.0)
    tr.record(0, "comm", "ag", 1.0, 3.0)
    assert tr.busy_time("compute") == pytest.approx(2.0)
    assert tr.overlap_time("compute", "comm") == pytest.approx(1.0)
    assert tr.makespan() == pytest.approx(3.0)
    with pytest.raises(ValueError):
        tr.record(0, "nonsense", "x", 0, 1)
    assert "C" in tr.render()


def test_trace_disabled_records_nothing():
    tr = Trace(enabled=False)
    tr.record(0, "compute", "x", 0.0, 1.0)
    assert tr.intervals == []
    assert tr.render() == "(empty trace)"
