"""Golden-equivalence and macro-step tests for the event-driven serving
engine (repro.serve.engine) against the preserved reference loop
(repro.serve.scheduler.serve_reference).

The engine's contract is *bit-identity*: every timestamp, counter and
per-step sample series must match the reference loop exactly — not
approximately — on any (workload, table, knobs) triple.  The suite pins
that on seeded workloads across {kv off/on} x {fcfs, spf} x {kv-aware,
naive} and on crafted workloads that land exactly on the macro-step
event boundaries (finish ties, arrivals mid-macro-step, pool watermark
hits).  A second family runs against a real in-memory
:class:`StepLatencyTable` (analytically faked simulator) so the inlined
``decode_coeffs`` pricing is exercised across context-segment
transitions and extrapolation — and a duck-typed table without
``decode_coeffs`` pins the fallback path.
"""

from __future__ import annotations

import pytest

import repro.models.runner as runner_mod
from repro.errors import ServeError
from repro.models.configs import ModelConfig
from repro.serve.kv import KVCacheConfig
from repro.serve.latency import StepLatencyTable
from repro.serve.metrics import percentile
from repro.serve.samples import StepStats
from repro.serve.scheduler import (
    RequestLog,
    ServerConfig,
    serve,
    serve_reference,
)
from repro.serve.workload import Request, generate_requests

TINY = ModelConfig("tiny", n_layers=4, hidden=512, heads=4, head_dim=128,
                   intermediate=2048, batch=1, seq_len=2048)

FLOOR = 1e-3
PER_TOKEN = 1e-5


class FakeTable:
    """Duck-typed table with *no* ``decode_coeffs``: the engine must fall
    back to calling the pricer per decode step (and still be exact)."""

    def interpolator(self, model, method, world=8, spec=None, seed=0):
        return lambda tokens, ctx=0: FLOOR + tokens * PER_TOKEN


TABLE = FakeTable()


def _req(rid, arrival, prompt, output):
    return Request(rid=rid, arrival_s=arrival, prompt_tokens=prompt,
                   output_tokens=output)


def _log_tuple(log: RequestLog):
    return (log.request.rid, log.queue_wait_s, log.first_token_s,
            log.finish_s, log.n_preemptions, log.recompute_tokens,
            log.preempt_stall_s)


def assert_bit_identical(reqs, model, table, server=None, kv=None):
    """serve() (the engine) == serve_reference() on every output bit."""
    a = serve(reqs, model, "tilelink", table, server, kv=kv)
    b = serve_reference(reqs, model, "tilelink", table, server, kv=kv)
    assert [_log_tuple(l) for l in a.logs] == [_log_tuple(l) for l in b.logs]
    for f in ("makespan_s", "n_prefill_steps", "n_decode_steps",
              "n_preemptions", "recompute_tokens", "peak_resident_tokens",
              "pool_blocks"):
        assert getattr(a, f) == getattr(b, f), f
    # the sample series compare as multisets + length + last sample
    for f in ("queue_depth", "batch_size", "pool_occupancy"):
        assert getattr(a, f) == getattr(b, f), f
    return a


# ------------------------------------------------- golden equivalence suite

GOLDEN_CONFIGS = [
    # (id, scenario, n, seed, server kwargs, kv kwargs or None)
    ("chat-fcfs", "chat", 400, 0, {}, None),
    ("chat-spf", "chat", 400, 1, {"policy": "spf"}, None),
    ("rag-tight-budget", "rag", 300, 2,
     {"max_batch": 8, "max_prefill_tokens": 2048}, None),
    ("summarize-kv-roomy", "batch-summarize", 300, 3, {"max_batch": 16},
     {"block_tokens": 16, "pool_blocks": 40_000}),
    ("chat-kv-watermark", "chat", 400, 4, {"max_batch": 32},
     {"block_tokens": 16, "pool_blocks": 150}),
    ("chat-naive-thrash", "chat", 300, 5, {"max_batch": 32},
     {"block_tokens": 16, "pool_blocks": 120, "admission": "naive",
      "victim": "longest-context"}),
    ("spf-kv-aware", "rag", 200, 6,
     {"policy": "spf", "max_batch": 16, "max_prefill_tokens": 4096},
     {"block_tokens": 16, "pool_blocks": 1500}),
]


@pytest.mark.parametrize(
    "scenario,n,seed,server_kw,kv_kw",
    [cfg[1:] for cfg in GOLDEN_CONFIGS],
    ids=[cfg[0] for cfg in GOLDEN_CONFIGS])
def test_engine_is_bit_identical_to_reference(scenario, n, seed, server_kw,
                                              kv_kw):
    reqs = generate_requests(scenario, n, seed=seed)
    kv = KVCacheConfig(**kv_kw) if kv_kw else None
    res = assert_bit_identical(reqs, TINY, TABLE,
                               ServerConfig(**server_kw), kv=kv)
    assert len(res.logs) == n
    assert all(l.finish_s is not None for l in res.logs)


def test_naive_golden_config_actually_preempts():
    """The thrash config must exercise the preemption path, or the
    golden suite silently stops covering it."""
    reqs = generate_requests("chat", 300, seed=5)
    res = serve(reqs, TINY, "tilelink", TABLE, ServerConfig(max_batch=32),
                kv=KVCacheConfig(block_tokens=16, pool_blocks=120,
                                 admission="naive",
                                 victim="longest-context"))
    assert res.n_preemptions > 0 and res.recompute_tokens > 0


# ------------------------------------------- real-pricer (decode_coeffs)

@pytest.fixture
def real_table(tmp_path, monkeypatch):
    """An in-memory StepLatencyTable over an analytic simulator — the
    engine prices decode through the real StepPricer's ``decode_coeffs``
    segments (flat floor, interior bilinear, extrapolation)."""
    def fake(model, method, world=8, seed=0, spec=None):
        return 1e-4 + model.tokens * 1e-6 + model.kv_len * 1e-8

    monkeypatch.setattr(runner_mod, "layer_time", fake)
    table = StepLatencyTable(tmp_path / "lat.json")
    table.ensure(TINY, "tilelink", buckets=(16, 64, 256),
                 ctx_buckets=(0, 512, 2048))
    return table


def test_engine_matches_reference_on_real_pricer(real_table):
    """Batch context sweeps 0 -> past the last ctx bucket, so decode
    pricing crosses every coefficient segment (forms 0, 1 and 2)."""
    reqs = [_req(i, i * 0.002, 200 + 17 * i, 40) for i in range(24)]
    assert_bit_identical(reqs, TINY, real_table,
                         ServerConfig(max_batch=24,
                                      max_prefill_tokens=8192))


def test_engine_matches_reference_on_real_pricer_with_pool(real_table):
    reqs = generate_requests("chat", 250, seed=7)
    assert_bit_identical(reqs, TINY, real_table,
                         ServerConfig(max_batch=16),
                         kv=KVCacheConfig(block_tokens=16, pool_blocks=700))


# ------------------------------------------------- macro-step event edges

def test_finish_tie_releases_both_on_the_same_step():
    """Two requests reaching their output length on the same decode step
    must both finish at that step's clock — the macro ends exactly at
    k = min remaining, not one early or late."""
    reqs = [_req(0, 0.0, 64, 10), _req(1, 0.0, 32, 10)]
    res = assert_bit_identical(reqs, TINY, TABLE,
                               ServerConfig(max_batch=2,
                                            max_prefill_tokens=128))
    assert res.logs[0].finish_s == res.logs[1].finish_s


def test_arrival_mid_macro_step_breaks_the_run():
    """An arrival landing mid-way through a long decode run must trigger
    a prefill at the same step the reference loop would — TTFT of the
    late request is the observable."""
    # one long decoder, then a request arriving while it decodes
    first = _req(0, 0.0, 100, 500)
    step1 = FLOOR + 1 * PER_TOKEN
    mid = (FLOOR + 100 * PER_TOKEN) + 150 * step1   # mid-decode instant
    reqs = [first, _req(1, mid + step1 / 3, 50, 20)]
    res = assert_bit_identical(reqs, TINY, TABLE, ServerConfig(max_batch=4))
    late = res.logs[1]
    # admitted promptly: waited less than one decode step, not until the
    # long request drained
    assert late.queue_wait_s < step1
    assert late.first_token_s < res.logs[0].finish_s


def test_arrival_exactly_on_step_boundary():
    """Arrival lands exactly on a decode-step completion clock — the
    <= comparison must bucket it identically in both loops."""
    step1 = FLOOR + 1 * PER_TOKEN
    prefill = FLOOR + 64 * PER_TOKEN
    reqs = [_req(0, 0.0, 64, 50),
            _req(1, prefill + 10 * step1, 64, 5)]
    assert_bit_identical(reqs, TINY, TABLE, ServerConfig(max_batch=4))


def test_pool_watermark_hit_mid_macro_step():
    """Decode growth exhausting the pool mid-run must stop the macro at
    the same step the reference's per-step growth check fires."""
    # 4 decoders whose growth crosses block boundaries at staggered
    # phases against a pool with almost no headroom
    reqs = [_req(i, 0.0, 60 + i, 200) for i in range(4)]
    res = assert_bit_identical(
        reqs, TINY, TABLE, ServerConfig(max_batch=4),
        kv=KVCacheConfig(block_tokens=16, pool_blocks=24))
    assert res.n_preemptions > 0
    assert all(l.finish_s is not None for l in res.logs)


def test_single_request_macro_is_one_big_run():
    """A lone request decodes its whole output in one macro-step; the
    derived counters must still record every individual step."""
    res = assert_bit_identical([_req(0, 0.0, 128, 1000)], TINY, TABLE)
    assert res.n_decode_steps == 999
    assert len(res.batch_size) == res.n_decode_steps + res.n_prefill_steps


def test_engine_rejects_what_the_reference_rejects():
    with pytest.raises(ServeError, match="at least one request"):
        serve([], TINY, "tilelink", TABLE)
    with pytest.raises(ServeError, match="needs .* KV blocks"):
        serve([_req(0, 0.0, 10_000, 4)], TINY, "tilelink", TABLE,
              kv=KVCacheConfig(block_tokens=16, pool_blocks=8))
    with pytest.raises(ServeError, match="KV pool too small"):
        # one request whose decode growth outruns the whole pool
        serve([_req(0, 0.0, 30, 200)], TINY, "tilelink", TABLE,
              kv=KVCacheConfig(block_tokens=16, pool_blocks=4))


# ----------------------------------------------------- ttft_s regression

def test_ttft_before_first_token_raises_serve_error():
    """Satellite regression: ``ttft_s`` on a not-yet-admitted request
    used to surface a bare TypeError from float arithmetic on None."""
    log = RequestLog(_req(7, 0.0, 10, 2))
    with pytest.raises(ServeError, match="request 7 has no first token"):
        log.ttft_s


# ------------------------------------------------------------- StepStats

def test_stepstats_percentile_matches_metrics_percentile():
    vals = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9]
    stats = StepStats.of(vals)
    for q in (0, 10, 25, 50, 75, 90, 99, 100):
        assert stats.percentile(q) == percentile(vals, q)


def test_stepstats_container_protocol():
    stats = StepStats.of([2, 2, 7, 1])
    assert len(stats) == 4
    assert stats.max == 7
    assert stats.last == 1
    assert stats[-1] == 1
    assert sorted(stats) == [1, 2, 2, 7]
    assert stats.distinct == 3
    with pytest.raises(IndexError):
        stats[0]
    assert stats == StepStats.of([2, 7, 2, 1])     # multiset equality
    assert stats != StepStats.of([2, 7, 1])
    assert (stats == [2, 2, 7, 1]) is False        # never equal to a list


def test_stepstats_add_repeat_and_from_counts():
    a = StepStats.of([5] * 1000 + [3] * 2)
    b = StepStats()
    b.add_repeat(5, 1000)
    b.add_repeat(3, 2)
    b.add_repeat(9, 0)              # no-op
    assert a == b
    c = StepStats._from_counts({5: 1000, 3: 2}, last=3)
    assert c == a
    assert c.distinct == 2 and len(c) == 1002


def test_stepstats_empty_series_raise():
    empty = StepStats()
    assert empty.last is None
    with pytest.raises(ServeError, match="empty sample series"):
        empty.max
    with pytest.raises(ServeError, match="empty"):
        empty.percentile(50)
    with pytest.raises(IndexError):
        empty[-1]


def test_stepstats_memory_is_bounded_by_distinct_values():
    """The streaming satellite: a million-step series with few distinct
    values must hold O(distinct) state, not O(steps)."""
    stats = StepStats()
    for i in range(1_000_000):
        stats.append(i % 32)
    assert len(stats) == 1_000_000
    assert stats.distinct == 32


# -------------------------------------- refresh --workers byte-identity

def test_refresh_latency_table_workers_is_byte_identical(tmp_path,
                                                         monkeypatch):
    """--workers N shards the cell simulations but must write the exact
    bytes a serial refresh writes (workers inherit the monkeypatched
    simulator over fork)."""
    from benchmarks import refresh_latency_table as refresh_mod

    def fake(model, method, world=8, seed=0, spec=None):
        return 1e-4 + model.tokens * 1e-6 + model.kv_len * 1e-8

    monkeypatch.setattr(runner_mod, "layer_time", fake)
    # shrink the roster to one model so the test stays quick
    monkeypatch.setattr(refresh_mod, "MODEL_NAMES", ("LLaMA2-7B",))
    serial, forked = tmp_path / "serial.json", tmp_path / "forked.json"
    assert refresh_mod.refresh(serial, workers=1) == 0
    assert refresh_mod.refresh(forked, workers=4) == 0
    assert serial.read_bytes() == forked.read_bytes()
