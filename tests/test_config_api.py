"""Tests for configuration objects and the public API surface."""

from __future__ import annotations

import pytest

import repro
from repro.config import A100, H800, HardwareSpec, SimConfig
from repro.errors import (
    CompileError,
    ConsistencyError,
    DeadlockError,
    LoweringError,
    MappingError,
    RuntimeLaunchError,
    ShapeError,
    SimulationError,
    TileLinkError,
)


def test_h800_matches_paper_testbed():
    assert H800.n_sms == 132
    # the export-cut NVLink: 400 GB/s bidirectional
    assert H800.nvlink_egress + H800.nvlink_ingress == pytest.approx(400e9)
    assert H800.tensor_flops > 9e14


def test_spec_scaled_copies():
    fat = H800.scaled(nvlink_egress=900e9)
    assert fat.nvlink_egress == 900e9
    assert H800.nvlink_egress == 200e9      # original untouched (frozen)
    assert A100.n_sms == 108


def test_spec_fingerprint_is_stable_and_field_sensitive():
    from dataclasses import replace

    # stable across instances with identical fields
    assert H800.fingerprint() == HardwareSpec().fingerprint()
    assert len(H800.fingerprint()) == 16
    # any field change (the tuner-cache invalidation contract) changes it
    assert replace(H800, n_sms=64).fingerprint() != H800.fingerprint()
    assert H800.scaled(nvlink_egress=900e9).fingerprint() != H800.fingerprint()
    assert A100.fingerprint() != H800.fingerprint()


def test_simconfig_validation():
    with pytest.raises(ValueError):
        SimConfig(world_size=0)
    with pytest.raises(ValueError):
        SimConfig(world_size=4, n_nodes=3)   # uneven split


def test_node_topology_helpers():
    cfg = SimConfig(world_size=8, n_nodes=2)
    assert cfg.ranks_per_node == 4
    assert cfg.node_of(0) == 0 and cfg.node_of(7) == 1
    assert cfg.same_node(0, 3) and not cfg.same_node(3, 4)
    with pytest.raises(ValueError):
        cfg.node_of(8)


def test_error_hierarchy():
    for exc in (SimulationError, DeadlockError, CompileError, LoweringError,
                ConsistencyError, MappingError, RuntimeLaunchError,
                ShapeError):
        assert issubclass(exc, TileLinkError)
    err = CompileError("bad kernel", lineno=7)
    assert "line 7" in str(err)
    dead = DeadlockError("stuck", blocked=["a", "b"])
    assert dead.blocked == ["a", "b"]


def test_public_api_exports():
    assert repro.__version__
    ctx = repro.DistContext.create(repro.SimConfig(world_size=2))
    assert ctx.world_size == 2


def test_top_level_packages_import():
    import repro.baselines  # noqa: F401
    import repro.bench  # noqa: F401
    import repro.collectives  # noqa: F401
    import repro.compiler  # noqa: F401
    import repro.kernels  # noqa: F401
    import repro.lang  # noqa: F401
    import repro.mapping  # noqa: F401
    import repro.models  # noqa: F401
    import repro.ops  # noqa: F401
    import repro.runtime  # noqa: F401
    import repro.sim  # noqa: F401
