"""Tests for the parallel sweep execution layer (``tuner/parallel.py``).

The contract under test: ``sweep(tasks, workers=N)`` is a drop-in upgrade
of the serial driver — byte-identical ``SweepReport.rows()`` (entry
order, dedup labels, ``n_simulated`` accounting, winning configs), the
same shared-cache contents afterwards, a zero-simulation warm rerun, and
a crashing worker that can neither corrupt nor drop entries from the
shared cache file.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os

import pytest

# importing the zoo registers every kernel's search space
import repro.kernels  # noqa: F401
from repro.bench.experiments import moe_sweep_tasks
from repro.kernels.ag_moe import ag_moe_tune_task
from repro.kernels.moe_rs import moe_rs_tune_task
from repro.models.configs import MOE_BENCHES
from repro.tuner import TuneCache, TunerError, sweep

SMALL_WORLD = 4

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process-pool sweep needs the fork start method")


def small_moe_task(m: int = 1024, **kw):
    return ag_moe_tune_task(m, 256, 256, 4, 2, world=SMALL_WORLD, **kw)


def aliasing_table():
    """Three distinct keys plus one alias of the first."""
    return [("first", small_moe_task()),
            ("alias", small_moe_task()),
            ("bigger", small_moe_task(m=2048)),
            ("rs", moe_rs_tune_task(1024, 256, 256, 4, 2,
                                    world=SMALL_WORLD))]


@needs_fork
def test_parallel_rows_byte_identical_to_serial(tmp_path):
    tasks = aliasing_table()
    serial = sweep(tasks, world=SMALL_WORLD,
                   cache=TuneCache(tmp_path / "serial.json"))
    par = sweep(tasks, world=SMALL_WORLD,
                cache=TuneCache(tmp_path / "par.json"), workers=2)

    assert json.dumps(par.rows(), sort_keys=True) == \
        json.dumps(serial.rows(), sort_keys=True)
    assert [e.deduped_from for e in par.entries] == \
        [e.deduped_from for e in serial.entries]
    assert par.n_simulated == serial.n_simulated > 0
    assert par.n_deduped == serial.n_deduped == 1
    # the merged shared cache holds exactly the serial run's keys
    assert set(TuneCache(tmp_path / "par.json").keys()) == \
        set(TuneCache(tmp_path / "serial.json").keys())


@needs_fork
def test_parallel_without_shared_cache(tmp_path):
    tasks = aliasing_table()
    serial = sweep(tasks, world=SMALL_WORLD)
    par = sweep(tasks, world=SMALL_WORLD, workers=2)
    assert json.dumps(par.rows(), sort_keys=True) == \
        json.dumps(serial.rows(), sort_keys=True)


@needs_fork
def test_acceptance_table4_parallel_matches_serial(tmp_path):
    """sweep(tasks, workers=2) over the Table-4 MoE shape table: identical
    report to serial, then a warm parallel rerun with zero simulations."""
    tasks = moe_sweep_tasks(MOE_BENCHES[:3], kernels=("ag_moe",), world=8)
    serial = sweep(tasks, world=8, cache=TuneCache(tmp_path / "serial.json"))
    cache = TuneCache(tmp_path / "par.json")
    par = sweep(tasks, world=8, cache=cache, workers=2)

    assert json.dumps(par.rows(), sort_keys=True) == \
        json.dumps(serial.rows(), sort_keys=True)
    assert [e.result.best for e in par.entries] == \
        [e.result.best for e in serial.entries]

    warm = sweep(tasks, world=8, cache=cache, workers=2)
    assert warm.n_simulated == 0
    assert all(e.from_cache for e in warm.entries)
    assert [e.result.best for e in warm.entries] == \
        [e.result.best for e in par.entries]


@needs_fork
def test_parallel_sweep_with_readonly_cache_matches_serial(tmp_path):
    """Regression: the post-pool merge used to call ``merge_from`` on the
    shared cache unconditionally — with a readonly cache (the shipped
    warm-cache handle) that now raises, and raising inside the finally
    would discard the completed report.  A readonly cache must instead
    get the serial path's semantics: results returned, nothing flushed."""
    path = tmp_path / "shipped.json"
    seed_tasks = [("a", small_moe_task()),
                  ("b", small_moe_task(m=2048))]
    sweep(seed_tasks, world=SMALL_WORLD, cache=TuneCache(path))
    before = path.read_text()

    ro = TuneCache(path, readonly=True)
    # one warm leader + one cold group exercises both resolution paths
    tasks = seed_tasks + [("cold", moe_rs_tune_task(1024, 256, 256, 4, 2,
                                                    world=SMALL_WORLD))]
    report = sweep(tasks, world=SMALL_WORLD, cache=ro, workers=2)
    assert [e.name for e in report.entries] == ["a", "b", "cold"]
    assert report.entries[0].from_cache and report.entries[1].from_cache
    assert report.entries[2].result.n_simulated > 0
    assert path.read_text() == before       # file untouched


def test_single_cold_group_runs_inline(tmp_path):
    """One cold key group needs no pool: workers=8 must still resolve."""
    cache = TuneCache(tmp_path / "c.json")
    report = sweep([("only", small_moe_task())], world=SMALL_WORLD,
                   cache=cache, workers=8)
    assert report.entries[0].result.n_simulated > 0
    assert len(cache) == 1


def _boom_make_builder(cand, scale):
    raise RuntimeError("injected mid-sweep crash")


def _exit_make_builder(cand, scale):
    os._exit(3)


def crashing_task(make_builder, tag: str):
    base = small_moe_task()
    return dataclasses.replace(base, make_builder=make_builder,
                               shape_key=base.shape_key + tag)


@needs_fork
def test_worker_exception_preserves_shared_cache(tmp_path):
    """A raising task fails the sweep, but completed groups' results are
    merged and pre-existing entries survive, in a still-valid file."""
    path = tmp_path / "shared.json"
    cache = TuneCache(path)
    sweep([("seed", small_moe_task())], world=SMALL_WORLD, cache=cache)
    seeded = set(TuneCache(path).keys())
    assert len(seeded) == 1

    tasks = [("good", small_moe_task(m=2048)),
             ("bad", crashing_task(_boom_make_builder, "boom"))]
    with pytest.raises(RuntimeError, match="injected mid-sweep crash"):
        sweep(tasks, world=SMALL_WORLD, cache=TuneCache(path), workers=2)

    final = TuneCache(path)
    keys = set(final.keys())
    assert seeded <= keys                       # nothing dropped
    assert len(keys) == 2                       # good group was merged
    # the file itself is intact, versioned JSON (no torn/partial write)
    raw = json.loads(path.read_text())
    assert raw["version"] == 1 and len(raw["entries"]) == 2


@needs_fork
def test_worker_hard_crash_preserves_shared_cache(tmp_path):
    """A worker dying outright (BrokenProcessPool) surfaces as TunerError
    and still cannot corrupt the shared cache file."""
    path = tmp_path / "shared.json"
    cache = TuneCache(path)
    sweep([("seed", small_moe_task())], world=SMALL_WORLD, cache=cache)
    seeded = set(TuneCache(path).keys())

    # two *cold* groups so the pool really engages (a single cold group
    # is resolved inline, where os._exit would take the test down too)
    tasks = [("seed", small_moe_task()),
             ("good", small_moe_task(m=2048)),
             ("dying", crashing_task(_exit_make_builder, "exit"))]
    with pytest.raises(TunerError, match="worker died"):
        sweep(tasks, world=SMALL_WORLD, cache=TuneCache(path), workers=2)

    final_keys = set(TuneCache(path).keys())
    assert seeded <= final_keys                 # nothing dropped
    raw = json.loads(path.read_text())
    assert raw["version"] == 1


@needs_fork
def test_parallel_progress_lines_match_serial(tmp_path):
    tasks = aliasing_table()
    serial_lines: list[str] = []
    sweep(tasks, world=SMALL_WORLD, cache=TuneCache(tmp_path / "s.json"),
          progress=serial_lines.append)
    par_lines: list[str] = []
    sweep(tasks, world=SMALL_WORLD, cache=TuneCache(tmp_path / "p.json"),
          workers=2, progress=par_lines.append)
    assert par_lines == serial_lines
