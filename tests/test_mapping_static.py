"""Tests for the affine tile-centric mapping (paper §4.1 formulas)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import MappingError
from repro.mapping.layout import TileGrid, ceil_div
from repro.mapping.static import AffineTileMapping


def brute_force_rank(mapping: AffineTileMapping, tile_id: int) -> int:
    """Paper formula computed the long way: rank owning the tile's rows."""
    lo, _hi = mapping.shape_range(tile_id)
    return min(lo // mapping.per_rank, mapping.world_size - 1)


@st.composite
def mappings(draw):
    world = draw(st.sampled_from([1, 2, 4, 8]))
    tile = draw(st.sampled_from([16, 32, 64, 128]))
    channels = draw(st.sampled_from([1, 2, 4]))
    groups = draw(st.integers(min_value=1, max_value=4))
    tiles_per_rank = channels * groups  # channel-aligned (validated)
    extent = world * tiles_per_rank * tile
    return AffineTileMapping(extent, tile, world, channels)


@given(mappings())
def test_shape_range_partitions_extent(m: AffineTileMapping):
    covered = 0
    prev_hi = 0
    for t in range(m.n_tiles):
        lo, hi = m.shape_range(t)
        assert lo == prev_hi
        assert hi > lo
        covered += hi - lo
        prev_hi = hi
    assert covered == m.extent


@given(mappings())
def test_rank_mapping_matches_paper_formula(m: AffineTileMapping):
    for t in range(m.n_tiles):
        # the paper: src_rank = floor(t / floor(M_per_rank / T_mp))
        expected = min(t // (m.per_rank // m.tile), m.world_size - 1)
        assert m.rank_of(t) == expected == brute_force_rank(m, t)


@given(mappings())
def test_channel_mapping_matches_paper_formula(m: AffineTileMapping):
    for t in range(m.n_tiles):
        expected = min(t // max(1, m.per_channel // m.tile),
                       m.n_channels - 1)
        assert m.channel_of(t) == expected


@given(mappings())
def test_channels_nest_within_ranks(m: AffineTileMapping):
    """A tile's channel always belongs to the tile's rank."""
    for t in range(m.n_tiles):
        owner, _ = m.local_channel(m.channel_of(t))
        assert owner == m.rank_of(t)


@given(mappings())
def test_tiles_in_channel_totals(m: AffineTileMapping):
    assert sum(m.tiles_in_channel(c) for c in range(m.n_channels)) \
        == m.n_tiles


@given(mappings(), st.data())
def test_wait_list_covers_exactly_the_producers(m: AffineTileMapping, data):
    """Consumer waiting per wait_list observes every producer tile that
    overlaps its row span — the correctness contract of consumer_tile_wait."""
    lo = data.draw(st.integers(min_value=0, max_value=m.extent - 1))
    hi = data.draw(st.integers(min_value=lo + 1, max_value=m.extent))
    channels = {c for c, _thr in m.wait_list(lo, hi)}
    # every producer tile overlapping [lo, hi) maps to a waited channel
    for t in range(m.n_tiles):
        tlo, thi = m.shape_range(t)
        if thi > lo and tlo < hi:
            assert m.channel_of(t) in channels
    # thresholds equal the channel's full producer count
    for c, thr in m.wait_list(lo, hi):
        assert thr == m.tiles_in_channel(c)


def test_owner_of_element():
    m = AffineTileMapping(extent=256, tile=32, world_size=4)
    assert m.owner_of_element(0) == 0
    assert m.owner_of_element(63) == 0
    assert m.owner_of_element(64) == 1
    assert m.owner_of_element(255) == 3
    with pytest.raises(MappingError):
        m.owner_of_element(256)


def test_validation_errors():
    with pytest.raises(MappingError):
        AffineTileMapping(extent=0, tile=32, world_size=4)
    with pytest.raises(MappingError):
        AffineTileMapping(extent=100, tile=32, world_size=4)  # misaligned
    m = AffineTileMapping(extent=256, tile=32, world_size=4)
    with pytest.raises(MappingError):
        m.shape_range(m.n_tiles)
    with pytest.raises(MappingError):
        m.channel_range(m.n_channels)


def test_channels_covering_empty_span():
    m = AffineTileMapping(extent=256, tile=32, world_size=4)
    assert m.channels_covering(10, 10) == []
    assert m.wait_list(5, 5) == []


# ---------------------------------------------------------------------------
# TileGrid
# ---------------------------------------------------------------------------

def test_tile_grid_roundtrip():
    g = TileGrid(100, 60, 32, 16)
    assert g.tiles_m == 4 and g.tiles_n == 4
    for t in range(g.n_tiles):
        tm, tn = g.tile_coords(t)
        assert g.tile_id(tm, tn) == t


def test_tile_grid_clamps_edges():
    g = TileGrid(100, 60, 32, 16)
    (r0, r1), (c0, c1) = g.ranges(g.n_tiles - 1)
    assert r1 == 100 and c1 == 60
    assert r1 - r0 == 4   # 100 - 3*32


def test_tile_grid_rows_covering():
    g = TileGrid(128, 10, 32, 10)
    assert list(g.tiles_covering_rows(0, 32)) == [0]
    assert list(g.tiles_covering_rows(31, 33)) == [0, 1]
    assert list(g.tiles_covering_rows(0, 128)) == [0, 1, 2, 3]
    assert list(g.tiles_covering_rows(5, 5)) == []


def test_tile_grid_validation():
    with pytest.raises(MappingError):
        TileGrid(10, 10, 0, 5)
    with pytest.raises(MappingError):
        ceil_div(5, 0)
    g = TileGrid(64, 64, 32, 32)
    with pytest.raises(MappingError):
        g.tile_coords(4)
    with pytest.raises(MappingError):
        g.tile_id(2, 0)
    with pytest.raises(MappingError):
        g.row_range(2)
