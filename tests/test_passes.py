"""Tests for the compiler passes: aggregation, pipelining, consistency."""

from __future__ import annotations

import pytest

from repro.compiler.passes import (
    annotate_loops,
    enforce_consistency,
    pipeline_loops,
    verify_consistency,
)
from repro.compiler.program import CompileOptions, compile_kernel
from repro.errors import ConsistencyError
from repro.lang import tl
from repro.lang.dsl import kernel
from repro.lang.ir import For, TileOp, walk_block


@kernel
def _gemm_like(a, b, c, K: tl.constexpr, BK: tl.constexpr):
    acc = tl.zeros((16, 16), "float32")
    for k in range(0, K, BK):
        x = tl.load(a, (0, 16), (k, k + BK))
        y = tl.load(b, (k, k + BK), (0, 16))
        acc += tl.dot(x, y)
    tl.store(c, (0, 16), (0, 16), acc)


@kernel
def _guarded(a, c, channel: tl.BlockChannel, N: tl.constexpr,
             BM: tl.constexpr):
    for t in range(N):
        tl.consumer_tile_wait(t)
        x = tl.load(a, (t * BM, t * BM + BM), (0, BM))
        tl.store(c, (t * BM, t * BM + BM), (0, BM), x)


@kernel
def _load_before_wait(a, c, channel: tl.BlockChannel, N: tl.constexpr,
                      BM: tl.constexpr):
    for t in range(N):
        w = tl.load(a, (0, BM), (0, BM))       # not guarded (precedes wait)
        tl.consumer_tile_wait(t)
        x = tl.load(c, (t * BM, t * BM + BM), (0, BM))  # guarded


def _loops(ir):
    return [s for s in walk_block(ir.body) if isinstance(s, For)]


def _loads(ir):
    return [s for s in walk_block(ir.body)
            if isinstance(s, TileOp) and s.op == "load"]


def test_primitive_free_loop_is_aggregable():
    prog = compile_kernel(_gemm_like, {"K": 64, "BK": 16})
    loop = _loops(prog.ir)[0]
    assert loop.aggregable
    assert loop.pipelined


def test_loop_with_primitive_not_aggregable():
    prog = compile_kernel(_guarded, {"N": 4, "BM": 16})
    loop = _loops(prog.ir)[0]
    assert not loop.aggregable
    assert loop.pipelined   # it still has loads to prefetch


def test_consistency_pins_guarded_loads():
    prog = compile_kernel(_guarded, {"N": 4, "BM": 16})
    load = _loads(prog.ir)[0]
    assert not load.prefetchable
    assert load.guards and load.guards[0].name == "consumer_tile_wait"


def test_unguarded_load_stays_prefetchable():
    prog = compile_kernel(_load_before_wait, {"N": 4, "BM": 16})
    loads = _loads(prog.ir)
    assert loads[0].prefetchable        # before the wait: hoisting is safe
    assert not loads[1].prefetchable    # after the wait: pinned


def test_disabling_consistency_leaves_loads_hot():
    prog = compile_kernel(
        _guarded, {"N": 5, "BM": 16},
        CompileOptions(enforce_consistency=False, validate=False))
    load = _loads(prog.ir)[0]
    assert load.prefetchable            # the §4.2 hazard, armed


def test_verifier_catches_bad_schedule():
    import copy

    ir = copy.deepcopy(_guarded.ir)
    annotate_loops(ir)
    pipeline_loops(ir)
    with pytest.raises(ConsistencyError):
        verify_consistency(ir)          # without enforce_consistency
    enforce_consistency(ir)
    verify_consistency(ir)              # now clean


def test_num_stages_one_disables_pipelining():
    prog = compile_kernel(_gemm_like, {"K": 32, "BK": 16},
                          CompileOptions(num_stages=1))
    loop = _loops(prog.ir)[0]
    assert not loop.pipelined
    assert all(not l.prefetchable for l in _loads(prog.ir))


def test_specialization_cache():
    p1 = compile_kernel(_gemm_like, {"K": 64, "BK": 16})
    p2 = compile_kernel(_gemm_like, {"K": 64, "BK": 16})
    p3 = compile_kernel(_gemm_like, {"K": 128, "BK": 16})
    assert p1 is p2
    assert p1 is not p3


@kernel
def _wait_in_branch(a, c, channel: tl.BlockChannel, N: tl.constexpr,
                    BM: tl.constexpr):
    for t in range(N):
        if t > 0:
            tl.consumer_tile_wait(t)
        x = tl.load(a, (t * BM, t * BM + BM), (0, BM))  # after the join
        tl.store(c, (t * BM, t * BM + BM), (0, BM), x)


@kernel
def _wait_in_inner_loop(a, c, channel: tl.BlockChannel, N: tl.constexpr,
                        BM: tl.constexpr):
    for t in range(N):
        for u in range(2):
            tl.consumer_tile_wait(t + u)
        x = tl.load(a, (t * BM, t * BM + BM), (0, BM))
        tl.store(c, (t * BM, t * BM + BM), (0, BM), x)


def test_branch_wait_guards_loads_after_the_join():
    # regression: a wait inside an If branch must still pin loads that
    # follow the If — the branch's guard reaches the join conservatively
    prog = compile_kernel(_wait_in_branch, {"N": 4, "BM": 16})
    load = _loads(prog.ir)[0]
    assert not load.prefetchable
    assert load.guards and load.guards[0].name == "consumer_tile_wait"


def test_inner_loop_wait_guards_loads_after_the_loop():
    prog = compile_kernel(_wait_in_inner_loop, {"N": 4, "BM": 16})
    outer_load = [l for l in _loads(prog.ir)][0]
    assert not outer_load.prefetchable
    assert outer_load.guards


def test_remote_load_blocks_aggregation():
    @kernel
    def remote(shards, c, channel: tl.BlockChannel, W: tl.constexpr,
               BM: tl.constexpr):
        for q in range(W):
            x = tl.load(shards[q], (0, BM), (0, BM))
            tl.store(c, (q * BM, q * BM + BM), (0, BM), x)

    prog = compile_kernel(remote, {"W": 2, "BM": 8})
    assert not _loops(prog.ir)[0].aggregable
