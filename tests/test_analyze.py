"""Static synchronization analyzer: clean kernels, seeded mutants, CLI.

The mutant tests are the analyzer's ground truth: each one plants a known
synchronization bug in a shipped kernel's IR (or channel wiring) and
asserts the analyzer reports exactly that bug class, with the right rule
id and a source line.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.analyze import (
    FAMILIES,
    analyze_plan,
    analyze_registered,
    build_ag_gemm_plan,
    build_gemm_rs_plan,
    check_compiled_ir,
    structural_check_ir,
)
from repro.analyze.__main__ import main as analyze_main
from repro.compiler.program import CompileOptions, compile_kernel
from repro.errors import AnalysisError
from repro.kernels.ag_gemm import (
    _ag_consumer_gemm,
    _ag_pull_producer,
    _ag_push_producer,
)
from repro.kernels.ag_moe import _ag_moe_group_gemm
from repro.kernels.gemm_rs import _gemm_producer, _gemm_rs_ring, _rs_reduce
from repro.kernels.moe_rs import _moe_rs_producer, _moe_rs_reduce
from repro.lang import tl
from repro.lang.dsl import kernel
from repro.lang.ir import For, Primitive

SHIPPED_KERNELS = [
    _ag_consumer_gemm, _ag_pull_producer, _ag_push_producer,
    _gemm_rs_ring, _gemm_producer, _rs_reduce,
    _ag_moe_group_gemm, _moe_rs_producer, _moe_rs_reduce,
]


# ---------------------------------------------------------------------------
# clean sweep: every registered plan analyzes without errors
# ---------------------------------------------------------------------------


def test_all_registered_plans_analyze_clean():
    seen = []
    for plan, report in analyze_registered():
        assert report.ok(strict=True), (
            f"{plan.name} not clean:\n{report.render()}")
        seen.append(plan.family)
    for family in FAMILIES:
        assert family in seen


def test_shipped_kernels_pass_structural_checks():
    for kdef in SHIPPED_KERNELS:
        assert structural_check_ir(kdef.ir) == []
        assert check_compiled_ir(kdef.ir) == []


def test_every_shipped_stmt_has_lineno():
    # satellite: every IR statement carries a populated source line
    for kdef in SHIPPED_KERNELS:
        for s in kdef.ir.walk_stmts():
            assert isinstance(s.lineno, int) and s.lineno > 0, (
                f"{kdef.name}: {type(s).__name__} has lineno={s.lineno!r}")


def test_kernel_meta_annotations_present():
    for kdef in SHIPPED_KERNELS:
        assert "role" in kdef.meta and "outputs" in kdef.meta


# ---------------------------------------------------------------------------
# seeded mutants
# ---------------------------------------------------------------------------


def _strip_notify(body):
    out = []
    for s in body:
        if isinstance(s, Primitive) and s.name == "producer_tile_notify":
            continue
        for blk in s.children():
            blk[:] = _strip_notify(blk)
        out.append(s)
    return out


def test_mutant_missing_notify_is_deadlock():
    ir = copy.deepcopy(_ag_pull_producer.ir)
    ir.body = _strip_notify(ir.body)
    plan, extra = build_ag_gemm_plan(
        world=2, mode="pull", ir_overrides={_ag_pull_producer.name: ir})
    report = analyze_plan(plan, extra=extra)
    rules = {f.rule for f in report.errors}
    assert "deadlock.unmatched-wait" in rules
    assert "deadlock.stall" in rules
    hits = [f for f in report.errors if f.rule == "deadlock.unmatched-wait"]
    # anchored at the consumer's wait site, with a source line
    assert all(f.kernel == _ag_consumer_gemm.name for f in hits)
    assert all(isinstance(f.lineno, int) and f.lineno > 0 for f in hits)


def test_mutant_inflated_threshold_is_unreachable():
    plan, extra = build_ag_gemm_plan(world=2, mode="pull",
                                     threshold_scale=2)
    report = analyze_plan(plan, extra=extra)
    rules = {f.rule for f in report.errors}
    assert "deadlock.unreachable-threshold" in rules
    hit = next(f for f in report.errors
               if f.rule == "deadlock.unreachable-threshold")
    assert hit.kernel == _ag_consumer_gemm.name
    assert isinstance(hit.lineno, int) and hit.lineno > 0
    # the message names the notify sites that fall short
    assert _ag_pull_producer.name in hit.message


def _duplicate_producer_loop(body) -> bool:
    for s in body:
        if isinstance(s, For) and any(
                isinstance(x, Primitive) for x in s.body):
            s.body = s.body + [copy.deepcopy(x) for x in s.body]
            return True
        for blk in s.children():
            if _duplicate_producer_loop(blk):
                return True
    return False


def test_mutant_duplicated_tile_loop_is_double_produce():
    ir = copy.deepcopy(_ag_pull_producer.ir)
    assert _duplicate_producer_loop(ir.body)
    plan, extra = build_ag_gemm_plan(
        world=2, mode="pull", ir_overrides={_ag_pull_producer.name: ir})
    report = analyze_plan(plan, extra=extra)
    hits = [f for f in report.errors if f.rule == "race.double-produce"]
    assert hits, report.render()
    assert all(f.kernel == _ag_pull_producer.name for f in hits)
    assert all(isinstance(f.lineno, int) and f.lineno > 0 for f in hits)


def test_mutant_unguarded_read_is_race():
    # delete the consumer_tile_wait from the ring kernel's reduce stage:
    # the gemm_out load then races with the same-launch producer stores
    ir = copy.deepcopy(_gemm_rs_ring.ir)

    def strip_wait(body):
        out = []
        for s in body:
            if isinstance(s, Primitive) and s.name == "consumer_tile_wait":
                continue
            for blk in s.children():
                blk[:] = strip_wait(blk)
            out.append(s)
        return out

    ir.body = strip_wait(ir.body)
    plan, extra = build_gemm_rs_plan(
        world=2, mode="ring", ir_overrides={_gemm_rs_ring.name: ir})
    report = analyze_plan(plan, extra=extra)
    hits = [f for f in report.findings if f.rule == "race.unguarded-read"]
    assert hits, report.render()
    assert all(f.kernel == _gemm_rs_ring.name for f in hits)
    assert all(isinstance(f.lineno, int) and f.lineno > 0 for f in hits)


# ---------------------------------------------------------------------------
# compile-time structural gate (CompileOptions.validate)
# ---------------------------------------------------------------------------


@kernel
def _divergent_barrier(x, channel: tl.BlockChannel, N: tl.constexpr):
    if channel.rank == 0:
        tl.barrier_all()


@kernel
def _block_divergent_barrier(x, channel: tl.BlockChannel,
                             N: tl.constexpr):
    bid = tl.block_id()
    if bid == 0:
        tl.barrier_all()


@kernel
def _bad_notify_mode(x, channel: tl.BlockChannel, N: tl.constexpr):
    tl.producer_tile_notify(0, "multicast")


@kernel
def _zero_count_wait(x, channel: tl.BlockChannel, N: tl.constexpr):
    tl.peer_tile_wait(0, 0, count=0)


def test_rank_divergent_barrier_rejected_at_compile():
    with pytest.raises(AnalysisError) as exc:
        compile_kernel(_divergent_barrier, dict(N=4))
    finding = exc.value.findings[0]
    assert finding.rule == "barrier.rank-divergent"
    assert isinstance(finding.lineno, int) and finding.lineno > 0


def test_block_divergent_barrier_rejected_at_compile():
    with pytest.raises(AnalysisError) as exc:
        compile_kernel(_block_divergent_barrier, dict(N=4))
    assert exc.value.findings[0].rule == "barrier.block-divergent"


def test_bad_notify_mode_rejected_at_compile():
    with pytest.raises(AnalysisError) as exc:
        compile_kernel(_bad_notify_mode, dict(N=4))
    assert exc.value.findings[0].rule == "struct.bad-mode"


def test_nonpositive_wait_count_rejected_at_compile():
    with pytest.raises(AnalysisError) as exc:
        compile_kernel(_zero_count_wait, dict(N=4))
    assert exc.value.findings[0].rule == "struct.nonpositive-count"


def test_validate_false_skips_structural_gate():
    program = compile_kernel(_divergent_barrier, dict(N=4),
                             CompileOptions(validate=False))
    assert program.name == _divergent_barrier.name


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_strict_sweep_exits_zero(capsys):
    assert analyze_main(["--all", "--strict", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "0 failing" in out


def test_cli_kernel_filter_and_json(tmp_path, capsys):
    path = tmp_path / "findings.json"
    assert analyze_main(["--kernel", "ag_attention",
                         "--json", str(path)]) == 0
    capsys.readouterr()
    payload = json.loads(path.read_text())
    assert payload["errors"] == 0
    assert payload["plans"] and payload["plans"][0]["ok"]
    assert any(f["rule"] == "analysis.note" for f in payload["findings"])


def test_cli_unknown_family_errors(capsys):
    assert analyze_main(["--kernel", "nope"]) == 2
    capsys.readouterr()


def test_cli_list(capsys):
    assert analyze_main(["--list"]) == 0
    out = capsys.readouterr().out
    for family in FAMILIES:
        assert family in out
