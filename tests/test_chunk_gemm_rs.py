"""The chunk-centric GEMM+ReduceScatter family — and, through it, the
registry's core promise: a family registered purely from its own module
shows up in the analyzer, the tuner, the bench tables and the serving
method axis with zero edits anywhere else.

The grep-isolation test at the bottom enforces that promise machine-
checkably: no other source file under ``src/`` or ``benchmarks/`` may
mention the family.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.analyze import analyze_registered
from repro.bench.experiments import family_builders, mlp_sweep_tasks
from repro.errors import ShapeError
from repro.kernels.chunk_gemm_rs import (
    ChunkGemmRsConfig,
    build_chunk_mapping,
    chunk_gemm_rs_overlapped,
    chunk_layout,
    chunk_spans,
)
from repro.models.configs import MLP_BENCHES, MlpShape, ModelConfig
from repro.models.runner import layer_time

from conftest import make_ctx

#: small enough to simulate in-test, large enough for the default tiles
TINY_SHAPE = MlpShape("tiny-mlp", 512, 256, 512, "test")


# ---------------------------------------------------------------------------
# chunk schedule
# ---------------------------------------------------------------------------

def test_chunk_layout_half_then_even():
    # 8 tiles in 3 chunks: a 4-tile head, then two 2-tile tails
    assert chunk_layout(8, 3) == (3, 4, 2)
    assert chunk_spans(8, 3) == [(0, 4), (4, 6), (6, 8)]
    # 4 tiles in 3 chunks: 2-tile head, two 1-tile tails
    assert chunk_spans(4, 3) == [(0, 2), (2, 3), (3, 4)]


@pytest.mark.parametrize("seg_tiles,n_chunks", [
    (1, 1), (1, 4), (2, 2), (5, 2), (7, 3), (8, 8), (3, 16),
])
def test_chunk_spans_partition_the_segment(seg_tiles, n_chunks):
    spans = chunk_spans(seg_tiles, n_chunks)
    assert spans[0][0] == 0 and spans[-1][1] == seg_tiles
    for (a, b), (c, d) in zip(spans, spans[1:]):
        assert b == c and a < b and c < d      # contiguous, non-empty
    assert len(spans) <= max(1, n_chunks)


def test_chunk_mapping_thresholds_and_channels():
    # m=64, block_m=8, world=2 -> 4 tiles/segment, 2 chunks of 2 tiles
    mapping, spans = build_chunk_mapping(64, 8, 2, 2, tiles_n=3)
    assert spans == [(0, 2), (2, 4)]
    assert mapping.n_channels == 4             # world * n_chunks
    for tid in range(8):
        seg, local = divmod(tid, 4)
        ci = next(i for i, (lo, hi) in enumerate(spans) if lo <= local < hi)
        [(ch, thr)] = mapping.wait_list_for_tile(tid)
        assert ch == seg * 2 + ci
        assert thr == 2 * 3                    # tiles-in-chunk x tiles_n


# ---------------------------------------------------------------------------
# numerics
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("world,n_chunks,block_m", [
    (2, 1, 16),     # degenerate: one chunk == plain per-segment signaling
    (2, 3, 8),      # variable-size chunks (2-tile head, 1-tile tails)
    (4, 2, 8),      # more ranks than chunks
])
def test_chunk_gemm_rs_numerics(rng, world, n_chunks, block_m):
    m, n, k = 32 * world, 32, 32
    ctx = make_ctx(world)
    xs = [rng.standard_normal((m, k)).astype(np.float16) for _ in range(world)]
    ws = [rng.standard_normal((k, n)).astype(np.float16) for _ in range(world)]
    ctx.bind("x", xs)
    ctx.bind("w", ws)
    ctx.alloc("out", (m // world, n), "float32")
    cfg = ChunkGemmRsConfig(m=m, n=n, k=k, block_m=block_m, block_n=16,
                            block_k=16, block_nr=16, n_chunks=n_chunks)
    chunk_gemm_rs_overlapped(ctx, cfg, "x", "w", "out", grid=16)
    ctx.run()
    total = sum(x.astype(np.float32) @ w.astype(np.float32)
                for x, w in zip(xs, ws))
    for r in range(world):
        ref = total[r * (m // world):(r + 1) * (m // world)]
        got = ctx.heap.tensor("out", r).numpy()
        assert np.max(np.abs(got - ref)) < 0.6, (world, n_chunks, r)


def test_chunk_config_validation():
    with pytest.raises(ShapeError):
        ChunkGemmRsConfig(m=100, n=4, k=4).validate(8)        # M % world
    with pytest.raises(ShapeError):
        ChunkGemmRsConfig(m=64, n=4, k=4, block_m=24).validate(2)


# ---------------------------------------------------------------------------
# the four consumers, each reached only through the registry
# ---------------------------------------------------------------------------

def test_analyzer_plans_are_strict_clean():
    results = list(analyze_registered(["chunk_gemm_rs"]))
    assert len(results) == 3
    for plan, report in results:
        assert report.ok(strict=True), (
            plan.name, [str(f) for f in report.findings])
    # variable-size chunk instantiation is part of the registered sweep
    assert any(plan.name == "chunk_gemm_rs/w2/nc3" for plan, _ in results)


def test_registered_plan_population_grew():
    """The registry-wide sweep covers the six seed families plus the
    chunk family (the PR's 18 -> 20+ plan acceptance gate)."""
    assert len(list(analyze_registered())) >= 20


def test_autotune_small_shape():
    cfg = ChunkGemmRsConfig.autotune(512, 128, 128, world=2, max_trials=2)
    assert isinstance(cfg, ChunkGemmRsConfig)
    assert (cfg.m, cfg.n, cfg.k) == (512, 128, 128)
    cfg.validate(2)


def test_sweep_entries_via_registry():
    tasks = mlp_sweep_tasks(MLP_BENCHES[:1], kernels=("chunk_gemm_rs",),
                            world=2)
    [(name, task)] = tasks
    assert name == "MLP-1/chunk_gemm_rs"
    assert task.kernel == "chunk_gemm_rs"
    from repro.bench.experiments import moe_sweep_tasks
    from repro.models.configs import MOE_BENCHES
    with pytest.raises(ValueError, match="unknown MoE sweep kernel"):
        moe_sweep_tasks(MOE_BENCHES[:1], kernels=("chunk_gemm_rs",))


def test_bench_builders_via_registry():
    builders = family_builders("chunk_gemm_rs", TINY_SHAPE, world=2)
    assert set(builders) == {"cuBLAS+NCCL", "TileLink", "TileLink-chunk"}
    from repro.bench.experiments import run_method_times
    times = run_method_times(builders, world=2)
    assert all(t > 0 for t in times.values())


def test_serving_method_via_registry():
    tiny = ModelConfig("tiny", n_layers=2, hidden=256, heads=8, head_dim=32,
                       intermediate=1024, batch=1, seq_len=512)
    chunk = layer_time(tiny, "tilelink-chunk", world=2)
    base = layer_time(tiny, "tilelink", world=2)
    assert chunk > 0 and base > 0
    # the chunk method swaps only the RS slots; same layer, different
    # overlap schedule -> a different (but same-ballpark) time
    assert chunk != base
    assert chunk < 3 * base


# ---------------------------------------------------------------------------
# grep isolation: the registration is genuinely self-contained
# ---------------------------------------------------------------------------

def test_family_is_registered_only_from_its_own_module():
    """No file in ``src/`` or ``benchmarks/`` other than the family's
    own module mentions it — every consumer reached it through the
    registry, not through a hand-edit."""
    root = Path(__file__).resolve().parent.parent
    offenders = []
    for tree in ("src", "benchmarks"):
        for path in (root / tree).rglob("*.py"):
            if path.name == "chunk_gemm_rs.py":
                continue
            if "chunk_gemm_rs" in path.read_text(encoding="utf-8"):
                offenders.append(str(path.relative_to(root)))
    assert not offenders, offenders
