"""Tests for the KV-cache memory layer (repro.serve.blockpool /
repro.serve.kv) and its scheduler integration.

The block pool is checked to the block (no leaks, no double frees,
occupancy never above capacity); the scheduler tests use the same
affine fake latency table as test_serve_scheduler so preemption and
identity properties are exact, not statistical.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ServeError
from repro.models.configs import ModelConfig
from repro.serve.blockpool import BlockPool
from repro.serve.kv import (
    ADMISSIONS,
    KVCacheConfig,
    KVCacheManager,
    KVFootprint,
    VICTIM_POLICIES,
)
from repro.serve.metrics import summarize
from repro.serve.scheduler import ServerConfig, serve
from repro.serve.workload import Request, generate_requests

TINY = ModelConfig("tiny", n_layers=4, hidden=512, heads=4, head_dim=128,
                   intermediate=2048, batch=1, seq_len=2048)

FLOOR = 1e-3
PER_TOKEN = 1e-5


class FakeTable:
    """Duck-typed StepLatencyTable: affine in tokens, ignores context."""

    def interpolator(self, model, method, world=8, spec=None, seed=0):
        return lambda tokens, ctx=0: FLOOR + tokens * PER_TOKEN


TABLE = FakeTable()


def _req(rid, arrival, prompt, output):
    return Request(rid=rid, arrival_s=arrival, prompt_tokens=prompt,
                   output_tokens=output)


def _kv(**kw):
    kw.setdefault("block_tokens", 16)
    return KVCacheConfig(**kw)


# ---------------------------------------------------------------- BlockPool

def test_blockpool_alloc_free_accounting():
    pool = BlockPool(8, 16)
    got = pool.alloc("a", 3)
    assert len(got) == 3 and pool.free_blocks == 5 and pool.used_blocks == 3
    pool.alloc("b", 5)
    assert pool.free_blocks == 0
    assert pool.occupancy() == 1.0
    pool.check_invariants()
    assert pool.free("a") == 3
    assert pool.free_blocks == 3
    pool.check_invariants()


def test_blockpool_never_exceeds_capacity():
    pool = BlockPool(4, 16)
    pool.alloc("a", 4)
    with pytest.raises(ServeError, match="pool exhausted"):
        pool.alloc("b", 1)
    pool.check_invariants()


def test_blockpool_double_free_raises():
    pool = BlockPool(4, 16)
    pool.alloc("a", 2)
    pool.free("a")
    with pytest.raises(ServeError, match="double free"):
        pool.free("a")
    with pytest.raises(ServeError, match="double free"):
        pool.free("never-allocated")


def test_blockpool_blocks_for_is_ceil():
    pool = BlockPool(8, 16)
    assert pool.blocks_for(0) == 0
    assert pool.blocks_for(1) == 1
    assert pool.blocks_for(16) == 1
    assert pool.blocks_for(17) == 2
    with pytest.raises(ServeError):
        pool.blocks_for(-1)


def test_blockpool_grow_to_allocates_only_the_boundary():
    pool = BlockPool(8, 16)
    pool.alloc("a", pool.blocks_for(20))            # 2 blocks, covers 32
    assert pool.blocks_to_grow("a", 32) == 0
    assert pool.grow_to("a", 32) == 0
    assert pool.grow_to("a", 33) == 1
    assert len(pool.owned("a")) == 3
    with pytest.raises(ServeError, match="owns no blocks"):
        pool.grow_to("b", 10)


def test_blockpool_allocation_order_is_deterministic():
    a, b = BlockPool(8, 16), BlockPool(8, 16)
    assert a.alloc("x", 3) == b.alloc("x", 3)
    a.free("x")
    assert a.alloc("y", 3) == [0, 1, 2]     # LIFO reuse, same ids back


def test_blockpool_invariant_checker_catches_corruption():
    pool = BlockPool(4, 16)
    pool.alloc("a", 2)
    pool._owned["a"].append(99)             # corrupt the ledger
    with pytest.raises(ServeError, match="invariant"):
        pool.check_invariants()


# ------------------------------------------------------- config & footprint

def test_footprint_matches_model_arithmetic():
    fp = KVFootprint.from_model(TINY)
    # K and V x layers x heads x head_dim x 2 bytes (fp16)
    assert fp.bytes_per_token == 2 * 4 * 4 * 128 * 2
    assert fp.bytes_for_tokens(10) == 10 * fp.bytes_per_token
    assert fp.tokens_for_bytes(fp.bytes_per_token * 7 + 1) == 7


def test_config_validation_rejects_bad_knobs():
    with pytest.raises(ServeError, match="exactly one"):
        KVCacheConfig().validate()                      # neither
    with pytest.raises(ServeError, match="exactly one"):
        _kv(pool_blocks=4, pool_bytes=1e9).validate()   # both
    with pytest.raises(ServeError, match="admission"):
        _kv(pool_blocks=4, admission="psychic").validate()
    with pytest.raises(ServeError, match="victim"):
        _kv(pool_blocks=4, victim="oldest").validate()
    with pytest.raises(ServeError, match="watermark"):
        _kv(pool_blocks=4, watermark=1.0).validate()
    with pytest.raises(ServeError, match="block_tokens"):
        _kv(block_tokens=0, pool_blocks=4).validate()
    assert "kv-aware" in ADMISSIONS and "naive" in ADMISSIONS
    assert set(VICTIM_POLICIES) == {"last-admitted", "longest-context"}


def test_pool_bytes_resolves_through_the_footprint():
    fp = KVFootprint.from_model(TINY)
    cfg = _kv(pool_bytes=float(fp.bytes_per_token * 16 * 10))
    assert cfg.resolve_blocks(fp) == 10
    with pytest.raises(ServeError, match="not even one"):
        _kv(pool_bytes=1.0).resolve_blocks(fp)


def test_manager_watermark_gates_only_nonempty_batches():
    mgr = KVCacheManager(_kv(pool_blocks=10, watermark=0.2), TINY)
    assert mgr.capacity_blocks == 10
    assert mgr.capacity_tokens == 160
    # watermark holds 2 blocks back: 9 blocks fit empty, not non-empty
    assert mgr.can_admit(16 * 9, batch_empty=True)
    assert not mgr.can_admit(16 * 9, batch_empty=False)
    assert mgr.can_admit(16 * 8, batch_empty=False)
    assert mgr.can_ever_fit(160) and not mgr.can_ever_fit(161)


# ------------------------------------------------------ scheduler + KV pool

def test_huge_pool_is_identical_to_no_pool():
    """The acceptance identity: kv-aware serving against a pool that
    never fills reproduces the memory-oblivious engine bit for bit."""
    reqs = generate_requests("chat", 200, seed=3)
    base = serve(reqs, TINY, "tilelink", TABLE)
    kv = serve(reqs, TINY, "tilelink", TABLE,
               kv=_kv(pool_blocks=100_000))
    assert [(l.first_token_s, l.finish_s, l.queue_wait_s) for l in base.logs] \
        == [(l.first_token_s, l.finish_s, l.queue_wait_s) for l in kv.logs]
    assert (base.n_prefill_steps, base.n_decode_steps, base.makespan_s) == \
        (kv.n_prefill_steps, kv.n_decode_steps, kv.makespan_s)
    assert kv.n_preemptions == 0 and kv.recompute_tokens == 0
    assert base.pool_blocks == 0 and kv.pool_blocks == 100_000
    assert len(base.pool_occupancy) == 0 and len(kv.pool_occupancy) > 0


def test_pressure_forces_preemption_and_everyone_still_finishes():
    # two long decoders fit; the pool cannot also hold the third, so the
    # engine must preempt-and-recompute, yet every request completes
    reqs = [_req(i, 0.0, 64, 50) for i in range(4)]
    res = serve(reqs, TINY, "tilelink", TABLE,
                ServerConfig(max_batch=8),
                kv=_kv(pool_blocks=10))
    assert all(l.finish_s is not None for l in res.logs)
    assert res.n_preemptions > 0
    assert res.recompute_tokens > 0
    assert any(l.preempt_stall_s > 0 for l in res.logs)
    assert sum(l.n_preemptions for l in res.logs) == res.n_preemptions
    assert sum(l.recompute_tokens for l in res.logs) == res.recompute_tokens
    # occupancy stayed a fraction and the pool drained at the end
    assert all(0.0 <= o <= 1.0 for o in res.pool_occupancy)
    assert res.pool_occupancy[-1] == 0.0    # no leaked blocks
    assert res.peak_resident_tokens <= 10 * 16


def test_preemption_is_deterministic_to_the_byte():
    reqs = generate_requests("long-context", 60, seed=7)
    runs = [serve(reqs, TINY, "tilelink", TABLE,
                  ServerConfig(max_batch=8, max_prefill_tokens=16384),
                  kv=_kv(pool_blocks=2048))
            for _ in range(2)]
    rows = [json.dumps(summarize(r, "long-context", "tilelink").row(),
                       sort_keys=True) for r in runs]
    assert runs[0].n_preemptions == runs[1].n_preemptions
    assert rows[0] == rows[1]


def test_victim_policy_picks_different_victims():
    # r0 (long context) admitted first, r1 (short) second; under
    # pressure last-admitted evicts r1, longest-context evicts r0
    reqs = [_req(0, 0.0, 96, 40), _req(1, 0.0, 32, 40)]

    def run(victim):
        res = serve(reqs, TINY, "tilelink", TABLE,
                    ServerConfig(max_batch=4),
                    kv=_kv(pool_blocks=12, victim=victim))
        return {l.request.rid: l for l in res.logs}

    last = run("last-admitted")
    longest = run("longest-context")
    assert last[0].n_preemptions == 0 and last[1].n_preemptions > 0
    assert longest[0].n_preemptions > 0


def test_request_larger_than_the_pool_raises():
    reqs = [_req(0, 0.0, 300, 4)]
    for admission in ADMISSIONS:
        with pytest.raises(ServeError, match="grow the pool"):
            serve(reqs, TINY, "tilelink", TABLE,
                  kv=_kv(pool_blocks=4, admission=admission))


def test_naive_admission_thrashes_harder_than_kv_aware():
    reqs = [_req(i, 0.0, 64, 20) for i in range(6)]

    def run(admission):
        return serve(reqs, TINY, "tilelink", TABLE,
                     ServerConfig(max_batch=6),
                     kv=_kv(pool_blocks=12, admission=admission))

    aware, naive = run("kv-aware"), run("naive")
    assert all(l.finish_s is not None for l in aware.logs + naive.logs)
    assert aware.n_preemptions == 0
    assert naive.n_preemptions > 0
    assert naive.recompute_tokens > aware.recompute_tokens


def test_preempted_requests_keep_their_first_token_time():
    """TTFT is a first-admission property: recompute delays *finish*,
    never the already-emitted first token."""
    # 17 blocks admit all four 4-block prompts in one chunk (with the
    # watermark) but cannot grow all of them — preemption strikes only
    # after every first token is out
    reqs = [_req(i, 0.0, 64, 50) for i in range(4)]
    pressured = serve(reqs, TINY, "tilelink", TABLE,
                      ServerConfig(max_batch=8), kv=_kv(pool_blocks=17))
    roomy = serve(reqs, TINY, "tilelink", TABLE,
                  ServerConfig(max_batch=8), kv=_kv(pool_blocks=10_000))
    assert pressured.n_preemptions > 0
    for p, r in zip(pressured.logs, roomy.logs):
        assert p.first_token_s == r.first_token_s
        if p.n_preemptions:
            assert p.preempt_stall_s > 0
            assert p.finish_s > r.finish_s


def test_kv_metrics_flow_through_summarize():
    reqs = [_req(i, 0.0, 64, 30) for i in range(4)]
    res = serve(reqs, TINY, "tilelink", TABLE, ServerConfig(max_batch=8),
                kv=_kv(pool_blocks=10))
    rep = summarize(res, "unit", "tilelink")
    assert rep.n_preemptions == res.n_preemptions > 0
    assert rep.recompute_tokens == res.recompute_tokens > 0
    assert rep.pool_occupancy_max is not None
    assert 0.0 < rep.pool_occupancy_max <= 1.0
    assert rep.preempt_stall_p99_s > 0
    # and a pool-less run keeps the null-together shape
    plain = summarize(serve(reqs, TINY, "tilelink", TABLE), "unit", "t")
    assert plain.pool_occupancy_p50 is None
    assert plain.pool_occupancy_max is None
