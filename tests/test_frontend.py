"""Tests for the AST frontend (Python kernel source -> tile IR)."""

from __future__ import annotations

import pytest

from repro.errors import CompileError
from repro.lang import tl
from repro.lang.dsl import kernel
from repro.lang.frontend import compile_function
from repro.lang.ir import (
    AssignScalar,
    For,
    If,
    Primitive,
    Return,
    TileOp,
    pretty,
)


@kernel
def _simple(a, b, c, M: tl.constexpr, BM: tl.constexpr):
    bid = tl.block_id()
    x = tl.load(a, (bid * BM, bid * BM + BM), (0, M))
    y = tl.load(b, (bid * BM, bid * BM + BM), (0, M))
    z = x + y
    tl.store(c, (bid * BM, bid * BM + BM), (0, M), z)


def test_signature_classification():
    ir = _simple.ir
    assert ir.params == ["a", "b", "c", "M", "BM"]
    assert ir.constexpr_params == ["M", "BM"]
    assert ir.channel_param is None


def test_body_shapes():
    ir = _simple.ir
    ops = [s for s in ir.walk_stmts() if isinstance(s, TileOp)]
    assert [o.op for o in ops] == ["load", "load", "add", "store"]
    assert isinstance(ir.body[0], AssignScalar)


@kernel
def _with_channel(x, channel: tl.BlockChannel, N: tl.constexpr):
    r = channel.rank
    w = channel.num_ranks
    tl.consumer_tile_wait(r % w)


def test_channel_param_and_fields():
    ir = _with_channel.ir
    assert ir.channel_param == "channel"
    prims = [s for s in ir.walk_stmts() if isinstance(s, Primitive)]
    assert prims[0].name == "consumer_tile_wait"


@kernel
def _control_flow(a, N: tl.constexpr):
    bid = tl.block_id()
    if bid < 2:
        total = 0
        for i in range(0, N, 2):
            total = total + i
    else:
        for j in range(N):
            pass
    return


def test_control_flow_structures():
    ir = _control_flow.ir
    kinds = [type(s).__name__ for s in ir.body]
    assert "If" in kinds and "Return" in kinds
    branch = next(s for s in ir.body if isinstance(s, If))
    assert any(isinstance(s, For) for s in branch.then)
    assert any(isinstance(s, For) for s in branch.orelse)


@kernel
def _tuple_assign(N: tl.constexpr):
    a, b = N // 2, N % 2
    c = a + b


def test_tuple_assignment():
    ir = _tuple_assign.ir
    targets = [s.target for s in ir.body if isinstance(s, AssignScalar)]
    assert targets == ["a", "b", "c"]


@kernel
def _aug_dot(a, b, K: tl.constexpr, BK: tl.constexpr):
    acc = tl.zeros((16, 16), "float32")
    for k in range(0, K, BK):
        x = tl.load(a, (0, 16), (k, k + BK))
        y = tl.load(b, (k, k + BK), (0, 16))
        acc += tl.dot(x, y)


def test_fused_dot_accumulate():
    ir = _aug_dot.ir
    dots = [s for s in ir.walk_stmts()
            if isinstance(s, TileOp) and s.op == "dot"]
    assert dots[0].kwargs.get("acc") == "acc"


def test_docstring_skipped():
    @kernel
    def doc(a, N: tl.constexpr):
        """This is a docstring, not a statement."""
        x = tl.load(a, (0, N), (0, N))

    assert len(doc.ir.body) == 1


def _compile_err(src_fn) -> str:
    with pytest.raises(CompileError) as exc:
        compile_function(src_fn)
    return str(exc.value)


def test_rejects_tile_scalar_mixing():
    def bad(a, N: tl.constexpr):
        x = tl.load(a, (0, N), (0, N))
        y = x + 1
        z = y // 2  # tile used in scalar context (floordiv on tiles)

    msg = _compile_err(bad)
    assert "tile" in msg


def test_rejects_unknown_tl_function():
    def bad(a, N: tl.constexpr):
        x = tl.transmogrify(a)

    assert "tile function" in _compile_err(bad) or "tl." in _compile_err(bad)


def test_rejects_while_loops():
    def bad(N: tl.constexpr):
        while True:
            pass

    assert "unsupported statement" in _compile_err(bad)


def test_rejects_non_range_for():
    def bad(a, N: tl.constexpr):
        for x in a:
            pass

    assert "range" in _compile_err(bad)


def test_rejects_unknown_channel_field():
    def bad(channel: tl.BlockChannel):
        x = channel.secret_sauce

    assert "BlockChannel field" in _compile_err(bad)


def test_rejects_value_call_as_statement():
    def bad(a, N: tl.constexpr):
        tl.load(a, (0, N), (0, N))

    assert "assign" in _compile_err(bad)


def test_rejects_varargs():
    def bad(*args):
        pass

    assert "positional" in _compile_err(bad)


def test_kernels_not_directly_callable():
    with pytest.raises(CompileError, match="launch"):
        _simple(1, 2, 3)


def test_pretty_printer_runs():
    text = pretty(_simple.ir)
    assert "_simple" in text and "load" in text


def test_missing_constexpr_binding_raises():
    with pytest.raises(CompileError, match="missing constexpr"):
        _simple.specialization_key({"M": 4})


def test_load_scalar_assigns_scalar():
    @kernel
    def k(table, N: tl.constexpr):
        e = tl.load_scalar(table, N)
        f = e + 1

    scalars = [s.target for s in k.ir.walk_stmts()
               if isinstance(s, AssignScalar)]
    tileops = [s for s in k.ir.walk_stmts() if isinstance(s, TileOp)]
    assert "f" in scalars
    assert tileops[0].op == "load_scalar" and tileops[0].target == "e"
