"""Tests for SimTensor, the symmetric heap and remote data movement."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SimConfig
from repro.errors import RuntimeLaunchError, ShapeError
from repro.memory.tensor import SimTensor, resolve_dtype
from repro.memory.symmetric import SymmetricHeap
from repro.sim.engine import Timeout
from repro.sim.machine import Machine
from tests.conftest import make_ctx


def test_dtype_resolution():
    assert resolve_dtype("float16") == np.float16
    assert resolve_dtype(np.float32) == np.float32
    with pytest.raises(ShapeError):
        resolve_dtype("bfloat128")


def test_tensor_metadata():
    t = SimTensor.zeros("x", (4, 8), "float16", rank=0)
    assert t.size == 32
    assert t.nbytes == 64
    assert t.materialized
    stub = SimTensor.zeros("y", (4, 8), "float16", rank=0, materialize=False)
    assert not stub.materialized
    with pytest.raises(ShapeError):
        stub.numpy()


def test_tensor_shape_validation():
    with pytest.raises(ShapeError):
        SimTensor("x", (-1, 2), "float32", 0)
    with pytest.raises(ShapeError):
        SimTensor("x", (2, 2), "float32", 0, data=np.zeros((3, 3)))


def test_tile_read_write_roundtrip(rng):
    data = rng.standard_normal((10, 12)).astype(np.float32)
    t = SimTensor.from_array("x", data, rank=0)
    tile = t.read_tile(((2, 5), (3, 9)))
    assert np.array_equal(tile, data[2:5, 3:9])
    t.write_tile(((0, 3), (0, 3)), np.ones((3, 3), dtype=np.float32))
    assert (t.numpy()[:3, :3] == 1).all()


def test_tile_clamping_at_edges(rng):
    data = rng.standard_normal((10, 10)).astype(np.float32)
    t = SimTensor.from_array("x", data, rank=0)
    tile = t.read_tile(((8, 16), (8, 16)))   # requested 8x8, clamped 2x2
    assert tile.shape == (2, 2)
    # writes clamp too: full tile cropped into the remaining region
    t.write_tile(((8, 16), (8, 16)), np.full((8, 8), 5.0, dtype=np.float32))
    assert (t.numpy()[8:, 8:] == 5.0).all()
    assert t.tile_bytes(((8, 16), (8, 16))) == 2 * 2 * 4


def test_accumulate_tile(rng):
    t = SimTensor.zeros("x", (4, 4), "float32", rank=0)
    t.accumulate_tile(((0, 4), (0, 4)), np.ones((4, 4)))
    t.accumulate_tile(((0, 4), (0, 4)), np.ones((4, 4)))
    assert (t.numpy() == 2).all()


def test_timing_mode_tensors_noop():
    t = SimTensor.zeros("x", (4, 4), "float32", rank=0, materialize=False)
    assert t.read_tile(((0, 2), (0, 2))) is None
    t.write_tile(((0, 2), (0, 2)), None)      # silently ignored
    t.accumulate_tile(((0, 2), (0, 2)), None)
    assert t.tile_bytes(((0, 4), (0, 4))) == 64


def test_bad_ranges_rejected():
    t = SimTensor.zeros("x", (4, 4), "float32", rank=0)
    with pytest.raises(ShapeError):
        t.read_tile(((0, 2),))          # wrong arity
    with pytest.raises(ShapeError):
        t.read_tile(((2, 1), (0, 2)))   # hi < lo


@given(st.integers(1, 20), st.integers(1, 20), st.integers(0, 25),
       st.integers(0, 25), st.integers(1, 10), st.integers(1, 10))
@settings(max_examples=50, deadline=None)
def test_tile_bytes_matches_numpy(rows, cols, lo_r, lo_c, h, w):
    t = SimTensor.zeros("x", (rows, cols), "float16", rank=0)
    ranges = ((lo_r, lo_r + h), (lo_c, lo_c + w))
    region = t.read_tile(ranges)
    assert t.tile_bytes(ranges) == region.size * 2


# ---------------------------------------------------------------------------
# symmetric heap
# ---------------------------------------------------------------------------

def test_alloc_one_instance_per_rank(ctx4):
    tensors = ctx4.alloc("x", (4, 4), "float32")
    assert len(tensors) == 4
    assert [t.rank for t in tensors] == [0, 1, 2, 3]
    with pytest.raises(RuntimeLaunchError):
        ctx4.alloc("x", (4, 4), "float32")   # duplicate name


def test_alloc_noise_fill_differs_across_ranks(ctx4):
    tensors = ctx4.alloc("x", (8, 8), "float32", fill=None)
    assert not np.array_equal(tensors[0].numpy(), tensors[1].numpy())


def test_bind_validates(ctx2, rng):
    a = rng.standard_normal((3, 3)).astype(np.float32)
    with pytest.raises(RuntimeLaunchError):
        ctx2.bind("x", [a])                 # wrong count
    with pytest.raises(ShapeError):
        ctx2.bind("y", [a, a[:2]])          # ragged
    tensors = ctx2.bind("z", [a, a * 2])
    assert np.allclose(tensors[1].numpy(), a * 2)
    with pytest.raises(RuntimeLaunchError):
        ctx2.heap.tensor("nope", 0)


def test_put_tile_applies_at_arrival(ctx2):
    """Data pushed between ranks is not visible before link arrival —
    the property the memory-consistency machinery relies on."""
    ctx2.bind("x", [np.full((4, 4), float(r), dtype=np.float32)
                    for r in range(2)])
    machine = ctx2.machine
    observed = {}

    def pusher(rank):
        if rank == 0:
            yield ctx2.heap.put_tile("x", 0, 1, ((0, 4), (0, 4)),
                                     ((0, 4), (0, 4)))
        else:
            return

    def early_reader(rank):
        if rank == 1:
            yield Timeout(1e-9)   # long before the transfer lands
            observed["early"] = ctx2.heap.tensor("x", 1).numpy()[0, 0]

    machine.spawn_per_rank(pusher, "push")
    machine.spawn_per_rank(early_reader, "read")
    ctx2.run()
    assert observed["early"] == 1.0        # stale value
    assert ctx2.heap.tensor("x", 1).numpy()[0, 0] == 0.0   # eventually lands


def test_get_tile_snapshot_at_issue(ctx2):
    ctx2.bind("x", [np.full((2, 2), 7.0, dtype=np.float32),
                    np.zeros((2, 2), dtype=np.float32)])

    def puller(rank):
        if rank == 1:
            aw = ctx2.heap.get_tile("x", 0, 1, ((0, 2), (0, 2)),
                                    ((0, 2), (0, 2)))
            # source mutates after issue: the pull carries the snapshot
            ctx2.heap.tensor("x", 0).write_tile(((0, 2), (0, 2)),
                                                np.zeros((2, 2)))
            yield aw

    ctx2.machine.spawn_per_rank(puller, "pull")
    ctx2.run()
    assert (ctx2.heap.tensor("x", 1).numpy() == 7.0).all()


def test_signal_bank_alloc_and_free(ctx2):
    banks = ctx2.heap.alloc_signals("s", 4)
    assert len(banks) == 2 and len(banks[0]) == 4
    with pytest.raises(RuntimeLaunchError):
        ctx2.heap.alloc_signals("s", 4)
    ctx2.heap.free("s")
    ctx2.heap.alloc_signals("s", 2)  # reusable after free


def test_heap_names(ctx2):
    ctx2.alloc("b", (2, 2), "float32")
    ctx2.alloc("a", (2, 2), "float32")
    assert ctx2.heap.names() == ["a", "b"]
