"""Unit tests for the cost model's tile pricing.

The tuner's pruner (repro.tuner.costprune) trusts three properties of
:class:`CostModel`: tile costs are positive, they grow monotonically with
tile size, and the wave-quantization arithmetic matches the closed-form
``ceil(tiles / sms)`` by hand.  Pin all three.
"""

from __future__ import annotations

import math

import pytest

from repro.config import H800
from repro.sim.costmodel import CostModel


@pytest.fixture
def model() -> CostModel:
    return CostModel(H800)


def test_gemm_tile_cost_components_positive(model):
    for bm, bn, k in [(64, 64, 512), (128, 128, 4096), (256, 128, 1024)]:
        cost = model.gemm_tile_time(bm, bn, k)
        assert cost.compute > 0
        assert cost.prologue > 0
        assert cost.epilogue_bytes > 0
        assert cost.total == cost.compute + cost.prologue


def test_gemm_tile_cost_rejects_degenerate_dims(model):
    with pytest.raises(ValueError):
        model.gemm_tile_time(0, 128, 1024)
    with pytest.raises(ValueError):
        model.gemm_tile_time(128, 128, -1)


def test_gemm_tile_cost_monotone_in_tile_size(model):
    """A bigger output tile can only cost more (work grows faster than
    the efficiency gain), and moves strictly more epilogue bytes."""
    k = 2048
    sizes = [(32, 32), (64, 64), (128, 128), (256, 256), (512, 512)]
    costs = [model.gemm_tile_time(bm, bn, k) for bm, bn in sizes]
    for small, big in zip(costs, costs[1:]):
        assert big.compute > small.compute
        assert big.epilogue_bytes > small.epilogue_bytes
        assert big.total > small.total


def test_gemm_tile_cost_monotone_in_depth(model):
    k_costs = [model.gemm_tile_time(128, 128, k).compute
               for k in (256, 1024, 4096)]
    assert k_costs[0] < k_costs[1] < k_costs[2]


def test_tile_efficiency_bounds(model):
    assert model.tile_efficiency(128, 128, 64) == pytest.approx(1.0)
    tiny = model.tile_efficiency(8, 8, 8)
    assert model.MIN_TILE_EFFICIENCY <= tiny < 0.5


def test_wave_quantization_matches_hand_computed_example(model):
    """m=1024, n=512, 128x128 tiles -> 8*4 = 32 tiles.  On 5 SMs that is
    ceil(32/5) = 7 waves; the makespan is the max of 7 tile-times and the
    HBM epilogue floor (here compute-bound, so exactly 7 * tile.total)."""
    m, n, k = 1024, 512, 2048
    cost = model.gemm_tile_time(128, 128, k)
    n_tiles = (m // 128) * (n // 128)
    assert n_tiles == 32
    waves = math.ceil(n_tiles / 5)
    assert waves == 7
    hbm_floor = n_tiles * cost.epilogue_bytes / model.hbm_effective_bandwidth
    expected = max(waves * cost.total, hbm_floor)
    assert waves * cost.total > hbm_floor          # compute-bound example
    assert model.gemm_time_monolithic(m, n, k, n_sms=5) == pytest.approx(
        expected)


def test_wave_quantization_cliff(model):
    """33 tiles on 32 SMs takes two waves — one extra tile doubles the
    makespan (the paper's resource-quantization phenomenon)."""
    k = 2048
    t_one_wave = model.gemm_time_monolithic(1024, 512, k, n_sms=32)
    t_two_waves = model.gemm_time_monolithic(1024 + 128, 512, k, n_sms=32)
    assert t_two_waves == pytest.approx(2 * t_one_wave)
