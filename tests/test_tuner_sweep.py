"""Tests for the multi-shape sweep driver and the extended kernel registry.

Covers the PR's acceptance scenario: the registry includes the MoE and
attention kernels, and ``sweep()`` over >= 3 Table-4 MoE shapes completes
with a warm-cache rerun performing zero simulations (``from_cache=True``
on every shape).
"""

from __future__ import annotations

import pytest

# importing the zoo registers every kernel's search space
import repro.kernels  # noqa: F401
from repro.bench.experiments import (
    attention_sweep_tasks,
    mlp_sweep_tasks,
    moe_sweep_tasks,
)
from repro.kernels.ag_moe import AgMoeConfig, ag_moe_tune_task
from repro.kernels.attention import AgAttentionConfig, ag_attention_tune_task
from repro.kernels.moe_rs import MoeRsConfig, moe_rs_tune_task
from repro.kernels.ring_attention import ring_attention_tune_task
from repro.models.configs import ATTENTION_BENCHES, MOE_BENCHES
from repro.tuner import TuneCache, TunerError, get_space, registered_kernels
from repro.tuner.sweep import sweep

SMALL_WORLD = 4
#: small MoE problem most tests tune (fast per-candidate simulation)
SMALL_MOE = dict(m=1024, h=256, d=256, n_experts=4, topk=2)


def small_moe_task(**kw):
    return ag_moe_tune_task(SMALL_MOE["m"], SMALL_MOE["h"], SMALL_MOE["d"],
                            SMALL_MOE["n_experts"], SMALL_MOE["topk"],
                            world=SMALL_WORLD, **kw)


# ---------------------------------------------------------------------------
# registry: the whole kernel zoo is tunable
# ---------------------------------------------------------------------------

def test_registry_includes_moe_and_attention_kernels():
    assert {"ag_gemm", "gemm_rs", "ag_moe", "moe_rs", "ag_attention",
            "ring_attention"} <= set(registered_kernels())
    moe_space = get_space("ag_moe")(8192, 2048, 192, 8, preset="small")
    assert set(moe_space.axis_names) == {"block_m", "block_n", "block_k"}
    attn_space = get_space("ag_attention")(32, 128, 16384, 8, preset="small")
    assert set(attn_space.axis_names) == {"block_q", "block_kv"}
    # the ring baseline shares the flash-tile axes
    assert get_space("ring_attention") is get_space("ag_attention")


def test_moe_default_configs_are_in_their_spaces():
    for task in (small_moe_task(),
                 moe_rs_tune_task(1024, 256, 256, 4, 2, world=SMALL_WORLD),
                 ag_attention_tune_task(4, 64, 4096, world=SMALL_WORLD),
                 ring_attention_tune_task(4, 64, 4096, world=SMALL_WORLD)):
        assert task.default in list(task.space.candidates())


def test_moe_and_attention_bounds_are_lower_bounds():
    """Pruner soundness for the newly registered kernels: the analytic
    bound must never exceed the simulated time."""
    from repro.bench.harness import run_builder

    tasks = (small_moe_task(),
             moe_rs_tune_task(1024, 256, 256, 4, 2, world=SMALL_WORLD),
             ag_attention_tune_task(4, 64, 4096, world=SMALL_WORLD),
             ring_attention_tune_task(4, 64, 4096, world=SMALL_WORLD))
    for task in tasks:
        for cand in list(task.space.candidates())[:3]:
            simulated = run_builder(task.make_builder(cand, 1.0),
                                    world=SMALL_WORLD)
            assert task.bound(cand) <= simulated, (task.kernel, cand)


def test_moe_autotune_classmethods(tmp_path):
    cache = TuneCache(tmp_path / "cache.json")
    res1 = AgMoeConfig.autotune(**SMALL_MOE, world=SMALL_WORLD, cache=cache,
                                full_result=True)
    assert res1.best_time <= res1.default_time
    assert isinstance(res1.best_config, AgMoeConfig)
    res1.best_config.validate(SMALL_WORLD)

    res2 = MoeRsConfig.autotune(**SMALL_MOE, world=SMALL_WORLD, cache=cache,
                                full_result=True)
    assert res2.best_time <= res2.default_time
    assert isinstance(res2.best_config, MoeRsConfig)

    # distinct router seeds must not alias in the cache
    res3 = AgMoeConfig.autotune(**SMALL_MOE, world=SMALL_WORLD, cache=cache,
                                router_seed=23, full_result=True)
    assert not res3.from_cache


def test_attention_autotune_both_kernels(tmp_path):
    cache = TuneCache(tmp_path / "cache.json")
    for kernel in ("ag_attention", "ring_attention"):
        res = AgAttentionConfig.autotune(4, 64, 4096, kernel=kernel,
                                         world=SMALL_WORLD, cache=cache,
                                         full_result=True)
        assert res.best_time <= res.default_time
        assert isinstance(res.best_config, AgAttentionConfig)
    with pytest.raises(Exception):
        AgAttentionConfig.autotune(4, 64, 4096, kernel="warp_attention",
                                   world=SMALL_WORLD)


# ---------------------------------------------------------------------------
# sweep driver
# ---------------------------------------------------------------------------

def test_sweep_rejects_empty_task_list():
    with pytest.raises(TunerError):
        sweep([], world=SMALL_WORLD)


def test_sweep_deduplicates_aliasing_tasks(tmp_path):
    """Two tasks resolving to the same cache key (same kernel, shape and
    space fingerprint) simulate once; the alias reuses the result."""
    cache = TuneCache(tmp_path / "cache.json")
    tasks = [("first", small_moe_task()), ("alias", small_moe_task())]
    report = sweep(tasks, world=SMALL_WORLD, cache=cache)
    first, alias = report.entries
    assert first.deduped_from is None and first.n_simulated > 0
    assert alias.deduped_from == "first" and alias.n_simulated == 0
    assert alias.result.best == first.result.best
    assert report.n_deduped == 1
    assert report.n_simulated == first.n_simulated


def test_sweep_dedup_progress_names_the_full_cache_key(tmp_path):
    """Regression: the dedup progress line claimed "same space fingerprint
    as X" although dedup keys on the *full* cache key (shape, world, spec
    and search signature included) — the message now says so and surfaces
    the shared key."""
    cache = TuneCache(tmp_path / "cache.json")
    tasks = [("first", small_moe_task()), ("alias", small_moe_task())]
    lines: list[str] = []
    report = sweep(tasks, world=SMALL_WORLD, cache=cache,
                   progress=lines.append)
    dedup_lines = [l for l in lines if "deduplicated" in l]
    assert len(dedup_lines) == 1
    # the corrected message: full cache key, not "space fingerprint"
    assert "space fingerprint" not in dedup_lines[0]
    assert "same cache key as first" in dedup_lines[0]
    assert report.entries[1].cache_key in dedup_lines[0]


def test_sweep_names_stay_unique():
    tasks = [small_moe_task(), small_moe_task()]
    report = sweep(tasks, world=SMALL_WORLD)
    names = [e.name for e in report.entries]
    assert len(set(names)) == 2
    assert report.entry(names[1]).deduped_from == names[0]


def test_sweep_report_rows_and_format(tmp_path):
    cache = TuneCache(tmp_path / "cache.json")
    tasks = moe_sweep_tasks(MOE_BENCHES[:1], world=8)
    report = sweep(tasks, world=8, cache=cache)
    rows = report.rows()
    assert [r["name"] for r in rows] == ["MoE-1/ag_moe", "MoE-1/moe_rs"]
    for row in rows:
        assert row["tuned_ms"] > 0
        assert row["speedup"] >= 1.0 - 1e-9
        assert isinstance(row["best"], dict)
    table = report.format("sweep test")
    assert "MoE-1/ag_moe" in table and "TOTAL" in table
    with pytest.raises(TunerError):
        report.entry("nonexistent")


def test_sweep_task_table_helpers():
    assert mlp_sweep_tasks([], world=8) == []
    attn = attention_sweep_tasks(ATTENTION_BENCHES[:1], world=8)
    assert len(attn) == len(ATTENTION_BENCHES[0].seq_lens)
    assert all(t.kernel == "ag_attention" for _, t in attn)
    with pytest.raises(ValueError):
        moe_sweep_tasks(MOE_BENCHES[:1], kernels=("bogus",), world=8)


def test_format_prefers_dedup_label_over_cache(tmp_path):
    """Regression: a deduplicated entry whose leader was a persistent-cache
    hit used to be labelled ``cache`` (the provenance column then
    disagreed with ``n_deduped`` in the TOTAL row)."""
    cache = TuneCache(tmp_path / "cache.json")
    tasks = [("first", small_moe_task()), ("alias", small_moe_task())]
    sweep(tasks, world=SMALL_WORLD, cache=cache)        # warm the cache
    warm = sweep(tasks, world=SMALL_WORLD, cache=cache)

    first, alias = warm.entries
    assert first.result.from_cache and alias.deduped_from == "first"
    table = warm.format("provenance")
    assert "dedup<-first" in table
    assert warm.n_deduped == 1
    # exactly one line says cache (the leader), not two
    assert sum("| cache" in line for line in table.splitlines()) == 1


def test_rows_emit_null_not_nan_without_default_time(tmp_path):
    """Regression: a cache hit lacking ``default_time`` must emit
    ``default_ms``/``speedup`` as ``None`` (JSON ``null``) — never
    ``0.0``/``NaN``, which ``json.dump`` writes as a bare invalid token."""
    import json

    from repro.config import H800
    from repro.tuner import task_cache_key

    task = small_moe_task()
    cache = TuneCache(tmp_path / "cache.json")
    key = task_cache_key(task, world=SMALL_WORLD, spec=H800)
    # a hand-written / legacy entry: winner only, no default_time meta
    cache.put(key, {"block_m": 128, "block_n": 128, "block_k": 64}, 1e-4)

    report = sweep([("legacy", task)], world=SMALL_WORLD, cache=cache)
    row = report.rows()[0]
    assert report.entries[0].result.from_cache
    assert row["default_ms"] is None and row["speedup"] is None
    assert row["tuned_ms"] > 0

    def _reject(token):
        raise AssertionError(f"bare constant {token!r} in sweep JSON")

    payload = json.dumps(report.rows(), allow_nan=False)
    parsed = json.loads(payload, parse_constant=_reject)
    assert parsed[0]["default_ms"] is None

    # the human-readable table agrees: no fabricated 0.000 ms / nan cells
    entry_line = report.format("legacy").splitlines()[3]
    assert "nan" not in entry_line and "0.000" not in entry_line
    assert " - " in entry_line                  # the entry's default cell

    # and the CI validator accepts exactly this null form
    from benchmarks.validate_bench_json import validate_sweep_rows

    assert validate_sweep_rows(parsed) == []
    broken = [dict(parsed[0], default_ms=0.0)]       # the old 0.0/NaN shape
    assert any("null together" in e for e in validate_sweep_rows(broken))


def test_sweep_rows_validate_against_ci_schema(tmp_path):
    """A regular cold sweep's rows pass the strict sweep schema."""
    import json

    from benchmarks.validate_bench_json import validate_sweep_rows

    cache = TuneCache(tmp_path / "cache.json")
    tasks = [("first", small_moe_task()), ("alias", small_moe_task())]
    report = sweep(tasks, world=SMALL_WORLD, cache=cache)
    rows = json.loads(json.dumps(report.rows(), allow_nan=False))
    assert validate_sweep_rows(rows, min_rows=2) == []


# ---------------------------------------------------------------------------
# acceptance: Table-4 sweep with a zero-simulation warm rerun
# ---------------------------------------------------------------------------

def test_acceptance_table4_sweep_warm_rerun(tmp_path):
    """sweep() over >= 3 Table-4 MoE shapes; the warm-cache rerun must do
    zero simulations with ``from_cache=True`` on every shape."""
    cache = TuneCache(tmp_path / "sweep.json")
    tasks = moe_sweep_tasks(MOE_BENCHES[:3], kernels=("ag_moe",), world=8)
    assert len(tasks) >= 3

    cold = sweep(tasks, world=8, cache=cache, max_trials=1)
    assert cold.n_simulated > 0
    assert all(e.result.best_time <= e.result.default_time
               for e in cold.entries)

    warm = sweep(tasks, world=8, cache=cache, max_trials=1)
    assert warm.n_simulated == 0
    assert all(e.from_cache for e in warm.entries)
    assert all(e.result.from_cache for e in warm.entries)
    assert [e.result.best for e in warm.entries] == \
        [e.result.best for e in cold.entries]
