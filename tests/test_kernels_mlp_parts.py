"""Integration tests: the AG+GEMM and GEMM+RS overlapped kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RuntimeLaunchError, ShapeError
from repro.kernels.ag_gemm import AgGemmConfig, ag_gemm_overlapped
from repro.kernels.gemm_rs import GemmRsConfig, gemm_rs_overlapped
from repro.kernels.mlp import MlpConfig, mlp_layer_tilelink
from repro.ops.activation import silu_ref
from tests.conftest import make_ctx

WORLD, M, N, K = 4, 256, 96, 64


def _setup_ag(rng, mode):
    ctx = make_ctx(WORLD)
    shards = [rng.standard_normal((M // WORLD, K)).astype(np.float16)
              for _ in range(WORLD)]
    weights = [rng.standard_normal((K, N)).astype(np.float16)
               for _ in range(WORLD)]
    ctx.bind("x", shards)
    ctx.bind("w", weights)
    ctx.alloc("y", (M, N), "float16")
    cfg = AgGemmConfig(m=M, n=N, k=K, block_m=32, block_n=32, block_k=32,
                       block_mp=32, comm_blocks=4, mode=mode)
    ag_gemm_overlapped(ctx, cfg, "x", "w", "y", grid=16)
    return ctx, shards, weights


@pytest.mark.parametrize("mode", ["dma", "pull", "push"])
def test_ag_gemm_all_modes_numerics(rng, mode):
    ctx, shards, weights = _setup_ag(rng, mode)
    ctx.run()
    full = np.concatenate(shards).astype(np.float32)
    for r in range(WORLD):
        ref = full @ weights[r].astype(np.float32)
        got = ctx.heap.tensor("y", r).numpy().astype(np.float32)
        assert np.max(np.abs(got - ref)) < 0.5, (mode, r)


def test_ag_gemm_channels_per_rank(rng):
    ctx = make_ctx(WORLD)
    shards = [rng.standard_normal((M // WORLD, K)).astype(np.float16)
              for _ in range(WORLD)]
    weights = [rng.standard_normal((K, N)).astype(np.float16)
               for _ in range(WORLD)]
    ctx.bind("x", shards)
    ctx.bind("w", weights)
    ctx.alloc("y", (M, N), "float16")
    cfg = AgGemmConfig(m=M, n=N, k=K, block_m=32, block_n=32, block_k=32,
                       block_mp=32, comm_blocks=4, mode="pull",
                       channels_per_rank=2)
    ag_gemm_overlapped(ctx, cfg, "x", "w", "y", grid=16)
    ctx.run()
    full = np.concatenate(shards).astype(np.float32)
    got = ctx.heap.tensor("y", 0).numpy().astype(np.float32)
    assert np.max(np.abs(got - full @ weights[0].astype(np.float32))) < 0.5


@pytest.mark.parametrize("mode", ["dma", "pull", "push"])
def test_ag_gemm_non_divisible_tiles_numerics(rng, mode):
    """tiles_m % world != 0 (row tiles straddle segment boundaries): the
    consumer's start tile rounds to the tile containing its own segment
    and the output stays correct on every rank."""
    m, n, k = 320, 32, 32          # per-rank rows 80, block_m 32 -> 10 tiles
    assert (m // 32) % WORLD != 0
    ctx = make_ctx(WORLD)
    shards = [rng.standard_normal((m // WORLD, k)).astype(np.float16)
              for _ in range(WORLD)]
    weights = [rng.standard_normal((k, n)).astype(np.float16)
               for _ in range(WORLD)]
    ctx.bind("x", shards)
    ctx.bind("w", weights)
    ctx.alloc("y", (m, n), "float16")
    cfg = AgGemmConfig(m=m, n=n, k=k, block_m=32, block_n=32, block_k=32,
                       block_mp=16, comm_blocks=4, mode=mode)
    ag_gemm_overlapped(ctx, cfg, "x", "w", "y", grid=16)
    ctx.run()
    full = np.concatenate(shards).astype(np.float32)
    for r in range(WORLD):
        ref = full @ weights[r].astype(np.float32)
        got = ctx.heap.tensor("y", r).numpy().astype(np.float32)
        assert np.max(np.abs(got - ref)) < 0.5, (mode, r)


def test_ag_gemm_config_validation():
    with pytest.raises(ShapeError):
        AgGemmConfig(m=100, n=4, k=4).validate(8)     # M % world
    with pytest.raises(ShapeError):
        AgGemmConfig(m=256, n=4, k=4, block_mp=48).validate(4)
    with pytest.raises(RuntimeLaunchError):
        AgGemmConfig(m=1024, n=4, k=4, mode="warp").validate(4)


@pytest.mark.parametrize("mode", ["ring", "hybrid"])
def test_gemm_rs_modes_numerics(rng, mode):
    ctx = make_ctx(WORLD)
    xs = [rng.standard_normal((M, K)).astype(np.float16)
          for _ in range(WORLD)]
    ws = [rng.standard_normal((K, N)).astype(np.float16)
          for _ in range(WORLD)]
    ctx.bind("x", xs)
    ctx.bind("w", ws)
    ctx.alloc("out", (M // WORLD, N), "float32")
    cfg = GemmRsConfig(m=M, n=N, k=K, block_m=32, block_n=32, block_k=32,
                       block_mr=32, block_nr=48, comm_blocks=4, mode=mode)
    gemm_rs_overlapped(ctx, cfg, "x", "w", "out", grid=16)
    ctx.run()
    total = sum(x.astype(np.float32) @ w.astype(np.float32)
                for x, w in zip(xs, ws))
    for r in range(WORLD):
        ref = total[r * (M // WORLD):(r + 1) * (M // WORLD)]
        got = ctx.heap.tensor("out", r).numpy()
        assert np.max(np.abs(got - ref)) < 0.6, (mode, r)


def test_gemm_rs_decoupled_tiles(rng):
    """Comm tile != compute tile (the decoupled subspace) stays correct."""
    ctx = make_ctx(2)
    xs = [rng.standard_normal((64, 32)).astype(np.float16) for _ in range(2)]
    ws = [rng.standard_normal((32, 48)).astype(np.float16) for _ in range(2)]
    ctx.bind("x", xs)
    ctx.bind("w", ws)
    ctx.alloc("out", (32, 48), "float32")
    cfg = GemmRsConfig(m=64, n=48, k=32, block_m=16, block_n=16, block_k=16,
                       block_mr=32, block_nr=24, comm_blocks=2, mode="ring")
    gemm_rs_overlapped(ctx, cfg, "x", "w", "out", grid=8)
    ctx.run()
    total = sum(x.astype(np.float32) @ w.astype(np.float32)
                for x, w in zip(xs, ws))
    assert np.max(np.abs(ctx.heap.tensor("out", 0).numpy() - total[:32])) < 0.6


def test_gemm_rs_config_validation():
    with pytest.raises(ShapeError):
        GemmRsConfig(m=100, n=4, k=4).validate(8)
    with pytest.raises(ShapeError):
        GemmRsConfig(m=256, n=4, k=4, block_m=48).validate(4)
    with pytest.raises(RuntimeLaunchError):
        GemmRsConfig(m=1024, n=4, k=4, mode="smoke").validate(4)


def test_full_mlp_layer_numerics(rng):
    world, m, h, i = 4, 128, 32, 64
    ctx = make_ctx(world)
    xs = [rng.standard_normal((m // world, h)).astype(np.float16) * 0.5
          for _ in range(world)]
    w1 = [rng.standard_normal((h, i // world)).astype(np.float16) * 0.2
          for _ in range(world)]
    w2 = [rng.standard_normal((i // world, h)).astype(np.float16) * 0.2
          for _ in range(world)]
    ctx.bind("x", xs)
    ctx.bind("w1", w1)
    ctx.bind("w2", w2)
    ctx.alloc("y", (m // world, h), "float32")
    cfg = MlpConfig(m=m, h=h, i=i, block_m=16, block_n=16, block_k=16,
                    block_mr=16, block_nr=16, comm_blocks=2)
    mlp_layer_tilelink(ctx, cfg, "x", "w1", "w2", "y")
    ctx.run()

    full = np.concatenate(xs).astype(np.float32)
    total = np.zeros((m, h), np.float32)
    for r in range(world):
        inter = (full @ w1[r].astype(np.float32)).astype(np.float16)
        act = silu_ref(inter).astype(np.float16)
        total += act.astype(np.float32) @ w2[r].astype(np.float32)
    for r in range(world):
        ref = total[r * (m // world):(r + 1) * (m // world)]
        got = ctx.heap.tensor("y", r).numpy()
        assert np.max(np.abs(got - ref)) < 0.8, r


def test_overlap_beats_sum_of_parts():
    """Overlapped AG+GEMM finishes before comm-then-compute would."""
    from repro.baselines.nonoverlap import ag_gemm_nonoverlap

    m, n, k = 2048, 512, 1024
    times = {}
    for name in ("tilelink", "baseline"):
        ctx = make_ctx(8, numerics=False)
        ctx.alloc("x", (m // 8, k), "float16")
        ctx.alloc("w", (k, n), "float16")
        ctx.alloc("y", (m, n), "float16")
        if name == "tilelink":
            cfg = AgGemmConfig(m=m, n=n, k=k, mode="dma")
            ag_gemm_overlapped(ctx, cfg, "x", "w", "y")
        else:
            ag_gemm_nonoverlap(ctx, m, n, k, "x", "w", "y")
        times[name] = ctx.run()
    assert times["tilelink"] < times["baseline"]
