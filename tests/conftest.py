"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimConfig
from repro.runtime.context import DistContext


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_ctx(world: int = 4, numerics: bool = True, trace: bool = False,
             **kw) -> DistContext:
    cfg = SimConfig(world_size=world, execute_numerics=numerics, trace=trace,
                    **kw)
    return DistContext.create(cfg)


@pytest.fixture
def ctx4() -> DistContext:
    """A 4-rank numeric-mode context."""
    return make_ctx(4)


@pytest.fixture
def ctx2() -> DistContext:
    return make_ctx(2)
