"""Tests for the model zoo and end-to-end runner (Figure 11 machinery)."""

from __future__ import annotations

import pytest

from repro.models.configs import (
    ATTENTION_BENCHES,
    E2E_MODELS,
    MLP_BENCHES,
    MOE_BENCHES,
    ModelConfig,
)
from repro.models.runner import e2e_model_time, inter_node_overhead, layer_time

#: a scaled-down model so the e2e path stays fast under test
TINY = ModelConfig("tiny", n_layers=2, hidden=1024, heads=8, head_dim=128,
                   intermediate=4096, batch=1, seq_len=2048)
TINY_MOE = ModelConfig("tiny-moe", n_layers=2, hidden=1024, heads=8,
                       head_dim=128, intermediate=4096, moe=True,
                       n_experts=8, topk=2, batch=1, seq_len=2048)


def test_table4_shapes_are_verbatim():
    assert [s.name for s in MLP_BENCHES] == [f"MLP-{i}" for i in range(1, 7)]
    assert (MLP_BENCHES[0].s, MLP_BENCHES[0].h, MLP_BENCHES[0].i) \
        == (8192, 4096, 11008)
    assert (MOE_BENCHES[2].e, MOE_BENCHES[2].topk) == (32, 5)
    assert ATTENTION_BENCHES[0].seq_lens == (16384, 32768, 65536, 131072)


def test_e2e_model_roster():
    names = [m.name for m in E2E_MODELS]
    assert len(names) == 8
    assert sum(m.moe for m in E2E_MODELS) == 3
    qwen = next(m for m in E2E_MODELS if "Qwen" in m.name)
    assert qwen.shared_intermediate > 0     # shared experts (§7.3)
    for m in E2E_MODELS:
        assert m.tokens == 4 * 8192


def test_tilelink_layer_beats_torch_layer_at_paper_scale():
    """Per-layer speedup at the paper's batch-4 / seq-8192 scale is ~1.2x
    for dense models (Figure 11's dense geomean)."""
    model = E2E_MODELS[1]   # LLaMA2-7B
    t_torch = layer_time(model, "torch")
    t_tl = layer_time(model, "tilelink")
    assert t_torch / t_tl > 1.10


def test_small_scale_overlap_gains_shrink():
    """At tiny scale the comm there is to hide shrinks and overheads
    dominate: overlap stops paying — the expected regime boundary."""
    small = layer_time(TINY, "torch") / layer_time(TINY, "tilelink")
    assert small < 1.15


def test_moe_layer_runs_both_methods():
    t_torch = layer_time(TINY_MOE, "torch")
    t_tl = layer_time(TINY_MOE, "tilelink")
    assert t_torch > 0 and t_tl > 0
    # MoE layers cost more than their dense twins under the same method
    assert t_torch > layer_time(TINY, "torch")


def test_e2e_scales_with_layers():
    per_layer = layer_time(TINY, "torch")
    total = e2e_model_time(TINY, "torch")
    assert total == pytest.approx(per_layer * TINY.n_layers, rel=0.01)


def test_two_node_overhead_is_additive():
    one = e2e_model_time(TINY, "torch")
    two = e2e_model_time(TINY, "torch", n_nodes=2)
    assert two > one
    assert two - one == pytest.approx(
        inter_node_overhead(TINY) * TINY.n_layers, rel=0.05)
