"""The declarative kernel-family registry: completeness of every
registered record, loud failure on partial registrations, the serving
method axis, and the ``python -m repro.registry`` manifest.

The meta-test is the registry's contract: every family a consumer can
resolve must expose a working hook for *each* consumer — tuner (search
space + tune task), analyzer (plans covering its declared worlds), bench
(builders) and launch — so a family can never be half-wired into the
stack.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.errors import RegistryError
from repro.registry import (
    BASE_SERVE_METHODS,
    ServeMethod,
    families,
    get_family,
    main as registry_main,
    register_family,
    resolve_serve_method,
    serve_method_names,
)
from repro.tuner.space import get_space


def test_all_shipped_families_registered():
    names = set(families())
    assert {"ag_gemm", "gemm_rs", "ag_moe", "moe_rs", "ag_attention",
            "ring_attention", "chunk_gemm_rs"} <= names
    assert len(names) >= 7


@pytest.mark.parametrize("name", sorted(families()))
def test_family_record_is_complete(name):
    """Every consumer hook resolves: this is the one test that makes a
    partial registration impossible to ship."""
    fam = get_family(name)
    assert fam.doc, "family needs a one-line doc"
    assert fam.provenance and ":" in fam.provenance
    assert dataclasses.is_dataclass(fam.config_cls)
    assert callable(fam.launch)

    # tuner: the search space and representative task resolve, and the
    # task routes back to this family
    space = fam.search_space()
    assert len(list(space.candidates())) >= 1
    task = fam.tune_task()
    assert task.kernel == name
    assert callable(get_space(name))

    # analyzer: at least one plan per declared world
    plans = [thunk() for thunk in fam.analyze_plans()]
    assert plans, "family ships no analyzer plans"
    plan_worlds = {plan.world for plan, _extra in plans}
    assert plan_worlds >= set(fam.worlds)

    # bench: the builders hook resolves to a callable
    assert callable(fam.bench_builders())

    # tile-IR families ship annotated kernel entry points
    if fam.tile_ir:
        assert fam.kernels
        for kdef in fam.kernels:
            assert kdef.meta.get("role") in ("producer", "consumer", "fused")
            assert "outputs" in kdef.meta
    # sweep hooks come in pairs: a category implies entries
    if fam.sweep_category is not None:
        assert fam.sweep_entries is not None


@pytest.mark.parametrize("drop,piece", [
    ("launch", "launch builder"),
    ("search_space", "search_space factory"),
    ("tune_task", "tune_task factory"),
    ("analyze_plans", "analyze_plans factory"),
    ("bench_builders", "bench_builders factory"),
    ("config_cls", "config dataclass"),
    ("worlds", "world sizes"),
])
def test_partial_registration_raises_naming_the_piece(drop, piece):
    """A registration missing any consumer hook fails loudly, names the
    missing piece, and inserts nothing."""
    @dataclasses.dataclass
    class Cfg:
        m: int = 1

    kwargs = dict(
        name="mutant_family", config_cls=Cfg, launch=lambda ctx, cfg: None,
        search_space=lambda: [], tune_task=lambda: None,
        analyze_plans=lambda: [], bench_builders=lambda: dict,
        worlds=(2,), tile_ir=False,
    )
    kwargs[drop] = None if drop != "worlds" else ()
    with pytest.raises(RegistryError, match=piece):
        register_family(**kwargs)
    assert "mutant_family" not in families()


def test_tile_ir_family_requires_annotated_kernels():
    @dataclasses.dataclass
    class Cfg:
        m: int = 1

    kwargs = dict(
        name="mutant_family", config_cls=Cfg, launch=lambda ctx, cfg: None,
        search_space=lambda: [], tune_task=lambda: None,
        analyze_plans=lambda: [], bench_builders=lambda: dict,
        worlds=(2,),
    )
    with pytest.raises(RegistryError, match="kernel entry points"):
        register_family(**kwargs)

    class FakeKernel:
        name = "k"
        meta = {}
    with pytest.raises(RegistryError, match="role"):
        register_family(**kwargs, kernels=(FakeKernel(),))
    assert "mutant_family" not in families()


def test_duplicate_registration_names_the_incumbent():
    @dataclasses.dataclass
    class Cfg:
        m: int = 1

    with pytest.raises(RegistryError,
                       match=r"already registered.*repro\.kernels\.ag_gemm"):
        register_family(
            name="ag_gemm", config_cls=Cfg, launch=lambda ctx, cfg: None,
            search_space=lambda: [], tune_task=lambda: None,
            analyze_plans=lambda: [], bench_builders=lambda: dict,
            worlds=(2,), tile_ir=False,
        )


def test_unknown_family_lists_the_registered_ones():
    with pytest.raises(RegistryError, match="unknown kernel family.*ag_gemm"):
        get_family("flash_decoding")


def test_serve_method_axis():
    names = serve_method_names()
    assert names[:3] == BASE_SERVE_METHODS
    assert "tilelink-chunk" in names
    # nothing experimental leaks into the shipped latency table
    assert serve_method_names(shipped_only=True) == BASE_SERVE_METHODS


def test_resolve_serve_method():
    base, overrides = resolve_serve_method("tilelink")
    assert (base, overrides) == ("tilelink", {})
    base, overrides = resolve_serve_method("tilelink-chunk")
    assert base == "tilelink"
    assert set(overrides) == {"gemm_rs"}
    assert callable(overrides["gemm_rs"])
    with pytest.raises(RegistryError, match="unknown serving method"):
        resolve_serve_method("triton")


def test_serve_method_validation():
    @dataclasses.dataclass
    class Cfg:
        m: int = 1

    kwargs = dict(
        name="mutant_family", config_cls=Cfg, launch=lambda ctx, cfg: None,
        search_space=lambda: [], tune_task=lambda: None,
        analyze_plans=lambda: [], bench_builders=lambda: dict,
        worlds=(2,), tile_ir=False,
    )
    with pytest.raises(RegistryError, match="collides with a base method"):
        register_family(**kwargs, serve_method=ServeMethod(name="torch"))
    with pytest.raises(RegistryError, match="already registered"):
        register_family(**kwargs,
                        serve_method=ServeMethod(name="tilelink-chunk"))
    with pytest.raises(RegistryError, match="not one of"):
        register_family(**kwargs, serve_method=ServeMethod(
            name="mutant-method", base="triton"))
    assert "mutant_family" not in families()


def test_cli_manifest_json(capsys):
    assert registry_main(["--list", "--json"]) == 0
    manifest = json.loads(capsys.readouterr().out)
    by_name = {f["name"]: f for f in manifest["families"]}
    assert len(by_name) >= 7
    assert sum(f["plans"] for f in by_name.values()) >= 20
    for fam in by_name.values():
        assert fam["provenance"]
    chunk = by_name["chunk_gemm_rs"]
    assert chunk["serve_method"] == "tilelink-chunk"
    assert chunk["provenance"].startswith("repro.kernels.chunk_gemm_rs:")
    assert manifest["shipped_serve_methods"] == list(BASE_SERVE_METHODS)


def test_cli_list_plain(capsys):
    assert registry_main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "chunk_gemm_rs" in out
    assert "serving methods:" in out
