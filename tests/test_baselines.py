"""Tests for the baseline implementations (numerics + expected orderings)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.decompose import (
    ag_gemm_decomposed,
    gemm_rs_decomposed,
    mlp_decomposed,
)
from repro.baselines.flux import ag_gemm_flux, gemm_rs_flux, mlp_flux
from repro.baselines.nonoverlap import (
    ag_gemm_nonoverlap,
    gemm_rs_nonoverlap,
    mlp_nonoverlap,
)
from repro.baselines.vllm_moe import IMPLS, moe_part1_baseline
from repro.kernels.mlp import MlpConfig
from repro.kernels.moe_common import build_moe_routing, random_router_logits
from repro.kernels.moe_layer import MoeConfig
from repro.ops.activation import silu_ref
from tests.conftest import make_ctx

WORLD, M, N, K = 4, 128, 48, 32


def _ag_reference(shards, weights, r):
    full = np.concatenate(shards).astype(np.float32)
    return full @ weights[r].astype(np.float32)


@pytest.mark.parametrize("impl", [ag_gemm_nonoverlap, ag_gemm_decomposed,
                                  ag_gemm_flux])
def test_ag_gemm_baselines_numerics(rng, impl):
    ctx = make_ctx(WORLD)
    shards = [rng.standard_normal((M // WORLD, K)).astype(np.float16)
              for _ in range(WORLD)]
    weights = [rng.standard_normal((K, N)).astype(np.float16)
               for _ in range(WORLD)]
    ctx.bind("x", shards)
    ctx.bind("w", weights)
    ctx.alloc("y", (M, N), "float16")
    impl(ctx, M, N, K, "x", "w", "y")
    ctx.run()
    for r in range(WORLD):
        got = ctx.heap.tensor("y", r).numpy().astype(np.float32)
        assert np.max(np.abs(got - _ag_reference(shards, weights, r))) < 0.5


@pytest.mark.parametrize("impl", [gemm_rs_nonoverlap, gemm_rs_decomposed,
                                  gemm_rs_flux])
def test_gemm_rs_baselines_numerics(rng, impl):
    ctx = make_ctx(WORLD)
    xs = [rng.standard_normal((M, K)).astype(np.float16)
          for _ in range(WORLD)]
    ws = [rng.standard_normal((K, N)).astype(np.float16)
          for _ in range(WORLD)]
    ctx.bind("x", xs)
    ctx.bind("w", ws)
    ctx.alloc("y", (M // WORLD, N), "float32")
    if impl is gemm_rs_flux:
        impl(ctx, M, N, K, "x", "w", "y", block_m=32, block_n=24)
    else:
        impl(ctx, M, N, K, "x", "w", "y")
    ctx.run()
    total = sum(x.astype(np.float32) @ w.astype(np.float32)
                for x, w in zip(xs, ws))
    for r in range(WORLD):
        ref = total[r * (M // WORLD):(r + 1) * (M // WORLD)]
        got = ctx.heap.tensor("y", r).numpy()
        assert np.max(np.abs(got - ref)) < 0.6, r


@pytest.mark.parametrize("impl", [mlp_nonoverlap, mlp_decomposed, mlp_flux])
def test_full_mlp_baselines_numerics(rng, impl):
    world, m, h, i = 4, 64, 32, 64
    ctx = make_ctx(world)
    xs = [rng.standard_normal((m // world, h)).astype(np.float16) * 0.5
          for _ in range(world)]
    w1 = [rng.standard_normal((h, i // world)).astype(np.float16) * 0.2
          for _ in range(world)]
    w2 = [rng.standard_normal((i // world, h)).astype(np.float16) * 0.2
          for _ in range(world)]
    ctx.bind("x", xs)
    ctx.bind("w1", w1)
    ctx.bind("w2", w2)
    ctx.alloc("y", (m // world, h), "float32")
    cfg = MlpConfig(m=m, h=h, i=i, block_m=16, block_n=16, block_k=16,
                    block_mr=16, block_nr=16, comm_blocks=2)
    impl(ctx, cfg, "x", "w1", "w2", "y")
    ctx.run()
    full = np.concatenate(xs).astype(np.float32)
    total = np.zeros((m, h), np.float32)
    for r in range(world):
        inter = (full @ w1[r].astype(np.float32)).astype(np.float16)
        act = silu_ref(inter).astype(np.float16)
        total += act.astype(np.float32) @ w2[r].astype(np.float32)
    for r in range(world):
        ref = total[r * (m // world):(r + 1) * (m // world)]
        got = ctx.heap.tensor("y", r).numpy()
        assert np.max(np.abs(got - ref)) < 0.8, r


def test_decomposition_pays_host_overhead():
    """At paper scale, Async-TP loses to plain non-overlap (Table 2)."""
    m, n, k = 8192, 1376, 4096
    times = {}
    for name, impl in (("non", ag_gemm_nonoverlap),
                       ("dec", ag_gemm_decomposed)):
        ctx = make_ctx(8, numerics=False)
        ctx.alloc("x", (m // 8, k), "float16")
        ctx.alloc("w", (k, n), "float16")
        ctx.alloc("y", (m, n), "float16")
        impl(ctx, m, n, k, "x", "w", "y")
        times[name] = ctx.run()
    assert times["dec"] > times["non"]


def test_moe_baseline_tier_ordering(rng):
    """cuBLAS slower than CUTLASS slower than vLLM (Figure 9)."""
    world, mper, h, d, e, topk, bm = 8, 512, 1024, 192, 16, 2, 128
    m = mper * world
    logits = random_router_logits(m, e, seed=11)
    routing = build_moe_routing(logits, mper, world, topk, block_m=bm)
    cfg = MoeConfig(m=m, h=h, i=d * world, n_experts=e, topk=topk, block_m=bm)
    times = {}
    for impl in IMPLS:
        ctx = make_ctx(world, numerics=False)
        ctx.alloc("x", (mper, h), "float16")
        ctx.alloc("w1", (e, h, d), "float16")
        ctx.alloc("g", (len(routing.sorted_token_ids), d), "float16")
        moe_part1_baseline(ctx, cfg, routing, impl, "x", "w1", "g")
        times[impl] = ctx.run()
    assert times["cublas"] > times["cutlass"] > times["vllm"]


def test_moe_baseline_rejects_unknown_impl(rng):
    ctx = make_ctx(2)
    logits = random_router_logits(32, 4, seed=0)
    routing = build_moe_routing(logits, 16, 2, 2, block_m=8)
    cfg = MoeConfig(m=32, h=8, i=16, n_experts=4, topk=2, block_m=8)
    with pytest.raises(Exception, match="unknown MoE baseline"):
        moe_part1_baseline(ctx, cfg, routing, "triton", "x", "w", "g")
