"""Tests for dynamic (lookup-table) mappings and MoE routing tables."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MappingError
from repro.mapping.dynamic import TableTileMapping, build_moe_consumer_mapping
from repro.kernels.moe_common import build_moe_routing, random_router_logits


def test_table_mapping_fill_and_query():
    m = TableTileMapping(n_tiles=4, n_channels=8, world_size=4)
    m.fill(0, 0, 16, 2, 5)
    assert m.shape_range(0) == (0, 16)
    assert m.rank_of(0) == 2
    assert m.channel_of(0) == 5


def test_table_mapping_unfilled_raises():
    m = TableTileMapping(n_tiles=2, n_channels=2, world_size=2)
    m.fill(0, 0, 4, 0, 0)
    with pytest.raises(MappingError, match="unfilled"):
        m.shape_range(1)
    with pytest.raises(MappingError, match="unfilled"):
        m.wait_list_for_tile(1)


def test_table_mapping_validation():
    with pytest.raises(MappingError):
        TableTileMapping(0, 1, 1)
    m = TableTileMapping(2, 2, 2)
    with pytest.raises(MappingError):
        m.fill(5, 0, 1, 0, 0)
    with pytest.raises(MappingError):
        m.fill(0, 4, 1, 0, 0)   # hi < lo
    with pytest.raises(MappingError):
        m.fill(0, 0, 1, 9, 0)   # bad rank
    with pytest.raises(MappingError):
        m.fill(0, 0, 1, 0, 9)   # bad channel
    with pytest.raises(MappingError):
        m.fill(0, 0, 1, 0, 0, wait_set=[(9, 1)])


def test_fill_all_and_lengths():
    m = TableTileMapping(3, 3, 3)
    m.fill_all(np.array([0, 4, 8]), np.array([4, 8, 12]),
               np.array([0, 1, 2]), np.array([0, 1, 2]))
    assert [m.rank_of(t) for t in range(3)] == [0, 1, 2]
    with pytest.raises(MappingError):
        m.fill_all(np.zeros(2), np.zeros(2), np.zeros(2), np.zeros(2))


def test_wait_set_override():
    m = TableTileMapping(1, 4, 4)
    m.fill(0, 0, 8, 3, 3, wait_set=[(0, 2), (3, 1)])
    assert m.wait_list_for_tile(0) == [(0, 2), (3, 1)]


@st.composite
def routings(draw):
    world = draw(st.sampled_from([2, 4]))
    tokens_per_rank = draw(st.sampled_from([8, 16, 32]))
    n_experts = draw(st.sampled_from([2, 4, 8]))
    topk = draw(st.integers(min_value=1, max_value=min(2, n_experts)))
    block_m = draw(st.sampled_from([4, 8, 16]))
    seed = draw(st.integers(min_value=0, max_value=1000))
    return world, tokens_per_rank, n_experts, topk, block_m, seed


@given(routings())
@settings(max_examples=30, deadline=None)
def test_moe_mapping_wait_sets_cover_sources(params):
    """Every consumer tile waits on the channel of every source rank whose
    tokens it consumes — the correctness invariant of the dynamic mapping."""
    world, tpr, n_experts, topk, block_m, seed = params
    logits = random_router_logits(tpr * world, n_experts, seed=seed)
    routing = build_moe_routing(logits, tpr, world, topk, block_m=block_m)
    mapping = routing.mapping

    for t in range(routing.n_tiles):
        rows = routing.padded_token_ids[t * block_m:(t + 1) * block_m]
        valid = routing.valid_mask[t * block_m:(t + 1) * block_m]
        sources = set((rows[valid] // tpr).tolist())
        if not sources:
            continue
        waited = {c for c, _ in mapping.wait_list_for_tile(t)}
        for src in sources:
            assert src in waited, (t, src, waited)


@given(routings())
@settings(max_examples=30, deadline=None)
def test_moe_routing_invariants(params):
    world, tpr, n_experts, topk, block_m, seed = params
    logits = random_router_logits(tpr * world, n_experts, seed=seed)
    routing = build_moe_routing(logits, tpr, world, topk, block_m=block_m)
    n_tokens = tpr * world
    # every (token, expert-copy) slot appears exactly once among valid rows
    valid_ids = routing.padded_token_ids[routing.valid_mask]
    assert len(valid_ids) == n_tokens * topk
    counts = np.bincount(valid_ids, minlength=n_tokens)
    assert (counts == topk).all()
    # expert tiles partition the padded rows and are expert-homogeneous
    assert routing.expert_tile_offsets[-1] == routing.n_tiles
    for e in range(n_experts):
        t0 = int(routing.expert_tile_offsets[e])
        t1 = int(routing.expert_tile_offsets[e + 1])
        assert (routing.expert_of_tile[t0:t1] == e).all()
    # per-tile segment counts sum to the segment thresholds
    assert (routing.segment_counts.sum(axis=0)
            == routing.segment_thresholds).all()
    # within an expert group, valid rows are ordered by source rank
    for e in range(n_experts):
        rows = routing.padded_token_ids[
            routing.expert_tile_offsets[e] * block_m:
            routing.expert_tile_offsets[e + 1] * block_m]
        mask = routing.valid_mask[
            routing.expert_tile_offsets[e] * block_m:
            routing.expert_tile_offsets[e + 1] * block_m]
        srcs = rows[mask] // tpr
        assert (np.diff(srcs) >= 0).all()


def test_moe_mapping_rejects_bad_inputs():
    with pytest.raises(MappingError):
        build_moe_consumer_mapping(np.zeros((4, 2, 2), dtype=int), 4, 2, 2, 8)
    with pytest.raises(MappingError):
        build_moe_consumer_mapping(np.zeros((5, 2), dtype=int), 4, 2, 2, 8)
    bad = np.full((8, 2), 99, dtype=int)
    with pytest.raises(MappingError):
        build_moe_consumer_mapping(bad, 4, 4, 2, 8)
