"""Tests for the step-latency table (repro.serve.latency).

Most tests stub :func:`repro.models.runner.layer_time` with an analytic
fake so interpolation arithmetic can be checked exactly and the suite
stays fast; one integration test drives the real simulator at a tiny
shape.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

import repro.models.runner as runner_mod
from repro.config import H800, HardwareSpec
from repro.errors import ServeError
from repro.models.configs import ModelConfig
from repro.serve.latency import (
    DEFAULT_BUCKETS,
    DEFAULT_CTX_BUCKETS,
    StepLatencyTable,
    entry_key,
    model_key,
)

TINY = ModelConfig("tiny", n_layers=4, hidden=512, heads=4, head_dim=128,
                   intermediate=2048, batch=1, seq_len=2048)
TINY_MOE = ModelConfig("tiny-moe", n_layers=4, hidden=512, heads=4,
                       head_dim=128, intermediate=2048, moe=True,
                       n_experts=4, topk=2, batch=1, seq_len=2048)
BUCKETS = (64, 128, 256)
CTX = (0, 1024)


@pytest.fixture
def fake_sim(monkeypatch):
    """Replace layer_time with an affine (tokens, kv_len) law; count
    calls.  Linear on both axes, so bilinear interpolation is exact."""
    calls = []

    def fake(model, method, world=8, seed=0, spec=None):
        calls.append((model.tokens, model.kv_len, method))
        return 1e-4 + model.tokens * 1e-6 + model.kv_len * 1e-8

    monkeypatch.setattr(runner_mod, "layer_time", fake)
    return calls


def test_ensure_simulates_once_then_memoises(tmp_path, fake_sim):
    table = StepLatencyTable(tmp_path / "lat.json")
    n = len(BUCKETS) * len(CTX)     # one sim per grid cell
    table.ensure(TINY, "tilelink", buckets=BUCKETS, ctx_buckets=CTX)
    assert len(fake_sim) == n
    table.ensure(TINY, "tilelink", buckets=BUCKETS,  # warm: no new sims
                 ctx_buckets=CTX)
    assert len(fake_sim) == n
    # a fresh handle re-reads the flushed file, still zero simulations
    again = StepLatencyTable(tmp_path / "lat.json")
    again.ensure(TINY, "tilelink", buckets=BUCKETS, ctx_buckets=CTX)
    assert len(fake_sim) == n


def test_changed_bucket_ladder_resimulates_whole_entry(tmp_path, fake_sim):
    table = StepLatencyTable(tmp_path / "lat.json")
    table.ensure(TINY, "tilelink", buckets=BUCKETS, ctx_buckets=CTX)
    table.ensure(TINY, "tilelink", buckets=(64, 128), ctx_buckets=CTX)
    assert len(fake_sim) == (len(BUCKETS) + 2) * len(CTX)
    # a differing *context* ladder also resimulates the whole entry
    table.ensure(TINY, "tilelink", buckets=(64, 128),
                 ctx_buckets=(0, 1024, 4096))
    assert len(fake_sim) == (len(BUCKETS) + 2) * len(CTX) + 2 * 3


def test_interpolation_is_exact_at_buckets_and_linear_between(
        tmp_path, fake_sim):
    table = StepLatencyTable(tmp_path / "lat.json")
    table.ensure(TINY, "tilelink", buckets=BUCKETS, ctx_buckets=CTX)
    f = table.interpolator(TINY, "tilelink")
    n = TINY.n_layers
    per_layer = lambda t, c=0: 1e-4 + t * 1e-6 + c * 1e-8  # the fake's law
    # exact at bucket points
    for b in BUCKETS:
        assert f(b) == pytest.approx(per_layer(b) * n)
    # linear in between (the fake is linear, so interpolation is exact)
    assert f(96) == pytest.approx(per_layer(96) * n)
    # flat floor below the smallest bucket
    assert f(1) == pytest.approx(per_layer(64) * n)
    # linear extrapolation above the largest
    assert f(512) == pytest.approx(per_layer(512) * n)


def test_context_axis_interpolates_and_extrapolates(tmp_path, fake_sim):
    table = StepLatencyTable(tmp_path / "lat.json")
    table.ensure(TINY, "tilelink", buckets=BUCKETS,
                 ctx_buckets=(0, 1024, 4096))
    f = table.interpolator(TINY, "tilelink")
    n = TINY.n_layers
    per_layer = lambda t, c: 1e-4 + t * 1e-6 + c * 1e-8
    # exact at the grid points
    for c in (0, 1024, 4096):
        assert f(128, c) == pytest.approx(per_layer(128, c) * n)
    # bilinear between rungs (the fake is linear on both axes -> exact),
    # including off-bucket token counts
    assert f(128, 512) == pytest.approx(per_layer(128, 512) * n)
    assert f(96, 2048) == pytest.approx(per_layer(96, 2048) * n)
    # linear extrapolation above the largest context rung
    assert f(128, 8192) == pytest.approx(per_layer(128, 8192) * n)
    # ctx=0 is the default: the one-axis form is unchanged
    assert f(128) == f(128, 0)
    # monotone in context under a monotone law
    assert f(128, 0) < f(128, 1024) < f(128, 4096) < f(128, 8192)


def test_step_time_scales_with_layer_count(tmp_path, fake_sim):
    table = StepLatencyTable(tmp_path / "lat.json")
    table.ensure(TINY, "tilelink", buckets=BUCKETS)
    deep = replace(TINY, n_layers=2 * TINY.n_layers)
    table.ensure(deep, "tilelink", buckets=BUCKETS)  # same key space entry
    assert table.step_time(deep, "tilelink", 128) == \
        pytest.approx(2 * table.step_time(TINY, "tilelink", 128))


def test_missing_entry_raises_with_refresh_pointer(tmp_path):
    table = StepLatencyTable(tmp_path / "lat.json")
    with pytest.raises(ServeError, match="refresh_latency_table"):
        table.step_time(TINY, "tilelink", 100)


def test_readonly_table_never_touches_disk(tmp_path, fake_sim):
    path = tmp_path / "lat.json"
    table = StepLatencyTable(path, readonly=True)
    table.ensure(TINY, "tilelink", buckets=BUCKETS)
    assert table.step_time(TINY, "tilelink", 128) > 0   # in-memory view
    assert not path.exists()


def test_invalid_bucket_ladder_raises(tmp_path):
    table = StepLatencyTable(tmp_path / "lat.json")
    with pytest.raises(ServeError, match="invalid bucket ladder"):
        table.ensure(TINY, "tilelink", buckets=())
    with pytest.raises(ServeError, match="invalid bucket ladder"):
        table.ensure(TINY, "tilelink", buckets=(4, 64))
    # a single bucket would leave the interpolator no segment to
    # extrapolate from — rejected at build time, not IndexError at query
    with pytest.raises(ServeError, match="invalid bucket ladder"):
        table.ensure(TINY, "tilelink", buckets=(64,))


def test_invalid_context_ladder_raises(tmp_path):
    table = StepLatencyTable(tmp_path / "lat.json")
    # the 0 rung (prefill form) is mandatory
    with pytest.raises(ServeError, match="context-bucket ladder"):
        table.ensure(TINY, "tilelink", buckets=BUCKETS,
                     ctx_buckets=(1024, 4096))
    # a single rung leaves the ctx axis no segment to extrapolate from
    with pytest.raises(ServeError, match="context-bucket ladder"):
        table.ensure(TINY, "tilelink", buckets=BUCKETS, ctx_buckets=(0,))


def test_corrupt_file_reads_as_empty(tmp_path):
    path = tmp_path / "lat.json"
    path.write_text("{not json")
    assert len(StepLatencyTable(path)) == 0


def test_keys_fold_everything_that_changes_the_answer():
    base = entry_key(TINY, "tilelink", 8, H800, 0)
    assert entry_key(TINY, "torch", 8, H800, 0) != base
    assert entry_key(TINY, "tilelink", 4, H800, 0) != base
    assert entry_key(TINY, "tilelink", 8, H800, 1) != base
    assert entry_key(replace(TINY, hidden=1024), "tilelink", 8, H800, 0) \
        != base
    other = HardwareSpec(n_sms=H800.n_sms - 2)
    assert entry_key(TINY, "tilelink", 8, other, 0) != base
    # n_layers and the display name scale/label outside the table
    assert entry_key(replace(TINY, n_layers=80, name="x"), "tilelink",
                     8, H800, 0) == base
    # MoE fields join the architecture fingerprint
    assert "moe4k2" in model_key(TINY_MOE)
    assert model_key(TINY_MOE) != model_key(TINY)


def test_tuned_entry_key_folds_the_warm_cache_content(tmp_path,
                                                      monkeypatch):
    """Retuning warm_cache.json changes what tilelink-tuned simulates,
    so tuned keys must go stale with the cache content (plain methods
    must not)."""
    shipped_tuned = entry_key(TINY, "tilelink-tuned", 8, H800, 0)
    shipped_plain = entry_key(TINY, "tilelink", 8, H800, 0)
    monkeypatch.setenv("REPRO_WARM_CACHE", str(tmp_path / "absent.json"))
    assert entry_key(TINY, "tilelink-tuned", 8, H800, 0) != shipped_tuned
    assert entry_key(TINY, "tilelink-tuned", 8, H800, 0).endswith("wcnone")
    assert entry_key(TINY, "tilelink", 8, H800, 0) == shipped_plain


def test_default_buckets_are_power_of_two_and_bounded():
    assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))
    assert all(b & (b - 1) == 0 for b in DEFAULT_BUCKETS)
    assert list(DEFAULT_CTX_BUCKETS) == sorted(set(DEFAULT_CTX_BUCKETS))
    assert DEFAULT_CTX_BUCKETS[0] == 0      # prefill form is mandatory
    # the acceptance budget: a cold build simulates well under ~50
    # build_layer points per (model, method)
    assert len(DEFAULT_BUCKETS) * len(DEFAULT_CTX_BUCKETS) <= 50


def test_real_simulator_integration(tmp_path):
    """One real entry at a tiny shape: monotone non-decreasing ladder,
    interpolation brackets the simulated bucket values, and resident
    context makes a decode step strictly more expensive."""
    table = StepLatencyTable(tmp_path / "lat.json")
    entry = table.ensure(TINY, "tilelink", buckets=(64, 128), seed=0,
                         ctx_buckets=(0, 4096))
    (t64, t128), (c64, c128) = entry["layer_s"]
    assert 0 < t64 <= t128
    assert table.step_time(TINY, "tilelink", 96) == \
        pytest.approx((t64 + t128) / 2 * TINY.n_layers)
    # a 4096-token resident cache must cost more than prefill-form
    # attention over the step's own tokens alone
    assert c64 > t64 and c128 > t128
    assert table.step_time(TINY, "tilelink", 64, ctx=4096) > \
        table.step_time(TINY, "tilelink", 64)
