"""Mixture-of-experts layer with dynamic tile-centric mapping (Figure 5/9).

Routes tokens with a top-k router, builds the dynamic lookup tables, runs
the full overlapped MoE layer (AG + GroupGEMM, SiLU, GroupGEMM + Scatter +
TopkReduce + RS) and compares against the vLLM-style fused baseline for
both correctness and simulated time.

Run:  python examples/moe_layer.py
"""

from __future__ import annotations

import numpy as np

from repro import DistContext, SimConfig
from repro.baselines.vllm_moe import moe_layer_baseline
from repro.kernels.moe_common import build_moe_routing, random_router_logits
from repro.kernels.moe_layer import MoeConfig, moe_layer_tilelink
from repro.util.tables import format_table, format_time

WORLD, MPER, H, E, TOPK, BM = 4, 64, 64, 8, 2, 16
M = MPER * WORLD
ISHARD = 48          # per-rank expert intermediate width


def run(impl: str, routing, weights, numerics: bool):
    ctx = DistContext.create(SimConfig(world_size=WORLD,
                                       execute_numerics=numerics, seed=2))
    shards, w1, w2 = weights
    ctx.bind("x", shards)
    ctx.alloc("y", (MPER, H), "float32")
    cfg = MoeConfig(m=M, h=H, i=ISHARD * WORLD, n_experts=E, topk=TOPK,
                    block_m=BM, block_n=16, block_k=16, block_mr=16,
                    block_nr=32)
    if impl == "tilelink":
        ctx.bind("w1", [w.reshape(E * H, ISHARD) for w in w1])
        ctx.bind("w2", [w.reshape(E * ISHARD, H) for w in w2])
        moe_layer_tilelink(ctx, cfg, routing, "x", "w1", "w2", "y")
    else:
        ctx.bind("w1", w1)
        ctx.bind("w2", w2)
        moe_layer_baseline(ctx, cfg, routing, impl, "x", "w1", "w2", "y")
    total = ctx.run()
    return total, ctx


def main() -> None:
    rng = np.random.default_rng(2)
    logits = random_router_logits(M, E, seed=2)
    routing = build_moe_routing(logits, MPER, WORLD, TOPK, block_m=BM)
    print(f"routing: {M} tokens x top-{TOPK} over {E} experts -> "
          f"{routing.n_tiles} grouped tiles "
          f"(dynamic mapping tables filled at runtime)")

    shards = [rng.standard_normal((MPER, H)).astype(np.float16) * 0.3
              for _ in range(WORLD)]
    w1 = [rng.standard_normal((E, H, ISHARD)).astype(np.float16) * 0.1
          for _ in range(WORLD)]
    w2 = [rng.standard_normal((E, ISHARD, H)).astype(np.float16) * 0.1
          for _ in range(WORLD)]
    weights = (shards, w1, w2)

    outputs = {}
    rows = []
    for impl in ("cublas", "vllm", "tilelink"):
        _, ctx = run(impl, routing, weights, numerics=True)
        outputs[impl] = [ctx.heap.tensor("y", r).numpy()
                         for r in range(WORLD)]
        t, _ = run(impl, routing, weights, numerics=False)
        rows.append([impl, format_time(t)])

    for impl in ("vllm", "tilelink"):
        for r in range(WORLD):
            err = np.max(np.abs(outputs[impl][r] - outputs["cublas"][r]))
            assert err < 0.5, (impl, r, err)
    print("all three implementations agree on the routed outputs\n")
    print(format_table(["implementation", "simulated time"], rows,
                       title=f"full MoE layer ({M} tokens, {E} experts, "
                             f"top-{TOPK}, {WORLD} ranks)"))
    print("\nTileLink's dynamic mapping lets the grouped GEMM start on a "
          "shard's tokens as soon as that shard's AllGather lands.")


if __name__ == "__main__":
    main()
