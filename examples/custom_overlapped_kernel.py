"""Write, register, and ship a custom overlapped kernel — end to end.

This is the paper's programmability pitch (Table 2: ~200 lines of Python
vs ~2,000 of CUDA) extended to the whole stack.  The workload is a fused
AllGather + row softmax — not in the built-in zoo — and the walkthrough
covers every step from kernel body to consumers:

Quickstart — the fastest path to your own kernel family:

1. author the kernel body as a decorated Python function (``@kernel`` +
   the ``tl`` tile-centric primitives), annotating ``role``/``outputs``;
2. wrap the shapes in a frozen config dataclass and write a launcher
   that wires mappings, channels and the SPMD launch;
3. describe the design space as a ``SearchSpace`` + ``TuneTask`` so the
   autotuner can search it;
4. mirror the launch as an analyzer plan (``PlanBuilder``) so the
   static synchronization verifier can prove it deadlock/race-free;
5. make ONE ``repro.registry.register_family()`` call from this module.

After step 5 every consumer resolves the family through the registry
with zero edits anywhere else: ``python -m repro.registry --list`` shows
it, ``repro.analyze`` sweeps its plans, the tuner finds its space, the
bench harness gets its builders.  A family can also contribute a serving
``method`` (see ``repro/kernels/chunk_gemm_rs.py``, which registers
``"tilelink-chunk"`` the same way and appears in ``models.runner``).

Run:  python examples/custom_overlapped_kernel.py
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import DistContext, SimConfig
from repro.analyze import analyze_plan
from repro.errors import ShapeError
from repro.lang import tl
from repro.lang.dsl import kernel
from repro.mapping.layout import TileGrid
from repro.mapping.static import AffineTileMapping
from repro.registry import get_family, register_family
from repro.runtime.launcher import launch_spmd
from repro.tuner.space import Axis, SearchSpace, divisors_of, register_space

WORLD = 4


# ---------------------------------------------------------------------------
# Step 1 — the kernel body: two cooperating roles in one launch
# ---------------------------------------------------------------------------

@kernel
def ag_softmax(shards, gathered, out, channel: tl.BlockChannel,
               M: tl.constexpr, N: tl.constexpr, BM: tl.constexpr,
               COMM_BLOCKS: tl.constexpr):
    """Fused AllGather + row softmax: one launch, two cooperating roles."""
    bid = tl.block_id()
    nb = tl.num_blocks()
    n_tiles = tl.cdiv(M, BM)
    world = channel.num_ranks
    tiles_per_rank = n_tiles // world
    if bid < COMM_BLOCKS:
        # communication role: pull peer tiles (own shard first), publish
        for i in range(bid, n_tiles, COMM_BLOCKS):
            src = (channel.rank + i % world) % world
            t = src * tiles_per_rank + i // world
            data = tl.tile_pull_data(shards, t, 0)
            tl.store(gathered, (t * BM, t * BM + BM), (0, N), data)
            tl.producer_tile_notify(t, "p2p")
    else:
        # computation role: wait per tile, then a numerically-stable softmax
        cid = bid - COMM_BLOCKS
        nconsumers = nb - COMM_BLOCKS
        for t in range(cid, n_tiles, nconsumers):
            tl.consumer_tile_wait(t)
            x = tl.load(gathered, (t * BM, t * BM + BM), (0, N))
            m = tl.row_max(x)
            mcol = tl.expand_dims(m)
            e = tl.exp(x - mcol)
            s = tl.row_sum(e)
            scol = tl.expand_dims(s)
            y = e / scol
            tl.store(out, (t * BM, t * BM + BM), (0, N), y)


# the analyzer and the registry both read these annotations
ag_softmax.meta.update(role="fused", comm_axis="m",
                       outputs=("gathered", "out"))


# ---------------------------------------------------------------------------
# Step 2 — config dataclass + launcher
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AgSoftmaxConfig:
    m: int
    n: int
    block_m: int = 32
    comm_blocks: int = 4

    def validate(self, world: int) -> None:
        tiles = self.m // self.block_m
        if self.m % self.block_m or tiles % world:
            raise ShapeError(
                f"M={self.m} must tile evenly into block_m={self.block_m} "
                f"rows across {world} ranks")

    def tune_candidate(self) -> dict:
        return dict(block_m=self.block_m, comm_blocks=self.comm_blocks)


def ag_softmax_overlapped(ctx: DistContext, cfg: AgSoftmaxConfig,
                          shards_name: str, gathered_name: str,
                          out_name: str, grid: int = 12,
                          tag: str = "agsm") -> None:
    cfg.validate(ctx.world_size)
    mapping = AffineTileMapping(cfg.m, cfg.block_m, ctx.world_size)
    grid2d = TileGrid(cfg.m, cfg.n, cfg.block_m, cfg.n)
    channels = ctx.make_block_channels(
        tag, mapping=mapping, comm_grid=grid2d, consumer_grid=grid2d,
        comm_blocks=cfg.comm_blocks)
    launch_spmd(ctx.machine, ag_softmax, grid=grid, args=dict(
        shards=ctx.heap.tensors(shards_name),
        gathered=ctx.heap.tensors(gathered_name),
        out=ctx.heap.tensors(out_name), channel=channels,
        M=cfg.m, N=cfg.n, BM=cfg.block_m, COMM_BLOCKS=cfg.comm_blocks),
        label=tag)


# ---------------------------------------------------------------------------
# Step 3 — tuner hooks: a design space and a task over it
# ---------------------------------------------------------------------------

def ag_softmax_search_space(m: int, n: int, world: int,
                            preset: str = "small") -> SearchSpace:
    per_rank = m // world
    return SearchSpace(axes=(
        Axis("block_m", divisors_of(per_rank, (16, 32, 64))),
        Axis("comm_blocks", (2, 4)),
    ))


register_space("ag_softmax", ag_softmax_search_space)


def ag_softmax_tune_task(m: int, n: int, *, world: int = WORLD,
                         preset: str = "small"):
    from repro.tuner.search import TuneTask

    def make_builder(cand: dict, scale: float = 1.0):
        align = world * int(cand["block_m"])
        m_s = m if scale >= 1.0 else max(align,
                                         int(m * scale) // align * align)
        cfg = AgSoftmaxConfig(m=m_s, n=n, **cand)

        def build(ctx: DistContext) -> None:
            ctx.alloc("x", (m_s // world, n), "float16", fill=None)
            ctx.alloc("g", (m_s, n), "float16", fill=None)
            ctx.alloc("y", (m_s, n), "float32", fill=None)
            ag_softmax_overlapped(ctx, cfg, "x", "g", "y")

        return build

    return TuneTask(
        kernel="ag_softmax", shape_key=f"m{m}n{n}",
        space=ag_softmax_search_space(m, n, world, preset=preset),
        default=AgSoftmaxConfig(m=m, n=n).tune_candidate(),
        make_builder=make_builder,
        bound=lambda c: 0.0,        # no analytic floor: simulate everything
        finalize=lambda c: AgSoftmaxConfig(m=m, n=n, **c),
    )


# ---------------------------------------------------------------------------
# Step 4 — analyzer plan: the launch mirrored over abstract banks
# ---------------------------------------------------------------------------

def build_ag_softmax_plan(world: int = 2):
    from repro.analyze.model import PlanBuilder

    m, n, bm, comm_blocks = world * 32, 16, 16, 2
    b = PlanBuilder(f"ag_softmax/w{world}", "ag_softmax", world)
    b.tensor("shards", (m // world, n))
    b.tensor("gathered", (m, n))
    b.tensor("out", (m, n))
    mapping = AffineTileMapping(m, bm, world)
    grid2d = TileGrid(m, n, bm, n)
    channels = b.make_block_channels(
        "agsm", mapping=mapping, comm_grid=grid2d, consumer_grid=grid2d,
        comm_blocks=comm_blocks)
    b.launch(ag_softmax, 6,
             dict(M=m, N=n, BM=bm, COMM_BLOCKS=comm_blocks),
             dict(shards="shards", gathered="gathered", out="out"),
             channels)
    return b.build()


# ---------------------------------------------------------------------------
# Step 5 — ONE registration; every consumer resolves it from here
# ---------------------------------------------------------------------------

def ag_softmax_builders(shape, world: int = WORLD, **_kw):
    """Bench builders: label -> fresh-context builder (Figure-8 style)."""
    m, n = shape.s, shape.h

    def fused(ctx: DistContext) -> None:
        ctx.alloc("x", (m // ctx.world_size, n), "float16", fill=None)
        ctx.alloc("g", (m, n), "float16", fill=None)
        ctx.alloc("y", (m, n), "float32", fill=None)
        ag_softmax_overlapped(ctx, AgSoftmaxConfig(m=m, n=n), "x", "g", "y")

    return {"TileLink-fused": fused}


register_family(
    name="ag_softmax",
    doc="example: fused AllGather + row softmax (tile-pull producer)",
    config_cls=AgSoftmaxConfig,
    kernels=(ag_softmax,),
    launch=ag_softmax_overlapped,
    search_space=lambda: ag_softmax_search_space(256, 64, WORLD),
    tune_task=lambda: ag_softmax_tune_task(256, 64),
    analyze_plans=lambda: [lambda: build_ag_softmax_plan(world=2),
                           lambda: build_ag_softmax_plan(world=4)],
    bench_builders=lambda: ag_softmax_builders,
    worlds=(2, 4),
)


# ---------------------------------------------------------------------------
# The payoff: run it, verify it, tune it, bench it — all via the registry
# ---------------------------------------------------------------------------

M, N = 256, 64


def main() -> None:
    fam = get_family("ag_softmax")
    print(f"registered: {fam.name} — {fam.doc}")
    print(f"  provenance {fam.provenance}, worlds {fam.worlds}\n")

    # numerics: launch through the family's own launcher
    ctx = DistContext.create(SimConfig(world_size=WORLD, seed=1))
    rng = np.random.default_rng(1)
    shards = [rng.standard_normal((M // WORLD, N)).astype(np.float16)
              for _ in range(WORLD)]
    ctx.bind("x", shards)
    ctx.alloc("g", (M, N), "float16", fill=None)
    ctx.alloc("y", (M, N), "float32")
    fam.launch(ctx, AgSoftmaxConfig(m=M, n=N), "x", "g", "y")
    total = ctx.run()

    full = np.concatenate(shards).astype(np.float32)
    e = np.exp(full - full.max(axis=1, keepdims=True))
    ref = e / e.sum(axis=1, keepdims=True)
    for r in range(WORLD):
        err = np.max(np.abs(ctx.heap.tensor("y", r).numpy() - ref))
        assert err < 1e-2, (r, err)
    print(f"numerics: correct on {WORLD} ranks (max err < 1e-2), "
          f"simulated {total * 1e6:.1f} us")

    # static verification: the registered plans, checked strictly
    for thunk in fam.analyze_plans():
        plan, extra = thunk()
        report = analyze_plan(plan, extra)
        assert report.ok(strict=True), report.findings
        print(f"analyzer: {plan.name} clean "
              f"({len(plan.threads)} abstract threads)")

    # autotuning: search the registered space (6 candidates here)
    from repro.tuner.search import tune
    result = tune(fam.tune_task(), world=WORLD)
    print(f"tuner: best {result.best} at {result.best_time * 1e6:.1f} us "
          f"(default {result.default_time * 1e6:.1f} us, "
          f"{result.n_candidates} candidates)")

    # bench: the builders grid, timed like the Figure-8 tables
    from repro.bench.experiments import run_method_times
    from repro.models.configs import MlpShape
    times = run_method_times(
        fam.bench_builders()(MlpShape("demo", M, N, 4 * N, "example"),
                             world=WORLD),
        world=WORLD)
    for label, t in times.items():
        print(f"bench: {label} {t * 1e6:.1f} us")

    print("\nOne register_family() call wired the kernel into the "
          "analyzer, tuner and bench harness; `python -m repro.registry "
          "--list` now shows it beside the built-in families.")


if __name__ == "__main__":
    main()
