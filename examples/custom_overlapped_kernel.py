"""Write your own overlapped kernel with tile-centric primitives.

This is the paper's programmability pitch (Table 2: ~200 lines of Python
vs ~2,000 of CUDA): a custom fused kernel where communication blocks pull
peer shards and notify, while consumer blocks wait per tile and compute a
row-wise softmax over the gathered matrix — a workload not in the built-in
zoo, written directly against the DSL.

Run:  python examples/custom_overlapped_kernel.py
"""

from __future__ import annotations

import numpy as np

from repro import DistContext, SimConfig
from repro.lang import tl
from repro.lang.dsl import kernel
from repro.mapping.layout import TileGrid
from repro.mapping.static import AffineTileMapping
from repro.runtime.launcher import launch_spmd

WORLD = 4
M, N = 256, 64           # gathered rows x features
BM = 32                  # tile rows
COMM_BLOCKS = 4


@kernel
def ag_softmax(shards, gathered, out, channel: tl.BlockChannel,
               M: tl.constexpr, N: tl.constexpr, BM: tl.constexpr,
               COMM_BLOCKS: tl.constexpr):
    """Fused AllGather + row softmax: one launch, two cooperating roles."""
    bid = tl.block_id()
    nb = tl.num_blocks()
    n_tiles = tl.cdiv(M, BM)
    world = channel.num_ranks
    tiles_per_rank = n_tiles // world
    if bid < COMM_BLOCKS:
        # communication role: pull peer tiles (own shard first), publish
        for i in range(bid, n_tiles, COMM_BLOCKS):
            src = (channel.rank + i % world) % world
            t = src * tiles_per_rank + i // world
            data = tl.tile_pull_data(shards, t, 0)
            tl.store(gathered, (t * BM, t * BM + BM), (0, N), data)
            tl.producer_tile_notify(t, "p2p")
    else:
        # computation role: wait per tile, then a numerically-stable softmax
        cid = bid - COMM_BLOCKS
        nconsumers = nb - COMM_BLOCKS
        for t in range(cid, n_tiles, nconsumers):
            tl.consumer_tile_wait(t)
            x = tl.load(gathered, (t * BM, t * BM + BM), (0, N))
            m = tl.row_max(x)
            mcol = tl.expand_dims(m)
            e = tl.exp(x - mcol)
            s = tl.row_sum(e)
            scol = tl.expand_dims(s)
            y = e / scol
            tl.store(out, (t * BM, t * BM + BM), (0, N), y)


def main() -> None:
    ctx = DistContext.create(SimConfig(world_size=WORLD, seed=1))
    rng = np.random.default_rng(1)
    shards = [rng.standard_normal((M // WORLD, N)).astype(np.float16)
              for _ in range(WORLD)]
    ctx.bind("x", shards)
    ctx.alloc("g", (M, N), "float16", fill=None)
    ctx.alloc("y", (M, N), "float32")

    mapping = AffineTileMapping(M, BM, WORLD)
    grid2d = TileGrid(M, N, BM, N)
    channels = ctx.make_block_channels(
        "agsm", mapping=mapping, comm_grid=grid2d, consumer_grid=grid2d,
        comm_blocks=COMM_BLOCKS)

    launch_spmd(ctx.machine, ag_softmax, grid=12, args=dict(
        shards=ctx.heap.tensors("x"), gathered=ctx.heap.tensors("g"),
        out=ctx.heap.tensors("y"), channel=channels,
        M=M, N=N, BM=BM, COMM_BLOCKS=COMM_BLOCKS))
    total = ctx.run()

    full = np.concatenate(shards).astype(np.float32)
    e = np.exp(full - full.max(axis=1, keepdims=True))
    ref = e / e.sum(axis=1, keepdims=True)
    for r in range(WORLD):
        got = ctx.heap.tensor("y", r).numpy()
        err = np.max(np.abs(got - ref))
        assert err < 1e-2, (r, err)
    print(f"fused AllGather+softmax on {WORLD} ranks: correct "
          f"(max err < 1e-2), simulated {total * 1e6:.1f} us")
    print("The kernel body is ~30 lines of Python: communication role, "
          "computation role, and the tile-centric primitives between them.")


if __name__ == "__main__":
    main()
