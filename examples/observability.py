"""Observability walkthrough: where did the time go?

``repro.serve`` answers "how fast"; ``repro.obs`` answers "why".  This
example attaches a :class:`repro.obs.Recorder` to a serving run and a
tuning sweep, then walks every view the recording supports:

1. serve one burst of chat traffic with a recorder attached — and show
   the run is *bit-identical* to the unrecorded one (recording is
   read-only tuple appends; the engine never branches on it);
2. attribute the simulated wall-clock to phases: prefill + decode +
   idle partition the makespan exactly, queue and preempt-stall overlay
   as request-seconds;
3. rank the slowest requests and print their per-phase timelines (the
   "why was THIS request slow" view);
4. fold the recording into a counter/gauge/histogram registry and
   snapshot it as strict JSON;
5. export a Chrome trace-event file — open https://ui.perfetto.dev and
   drag it in to scrub the engine, pool and per-request tracks;
6. record a tuning sweep's wall-time spans (per candidate simulation,
   prune pass, cache probe) and total them by category.

The same CLI is one command away:

    python -m repro.obs record --out run.json
    python -m repro.obs summarize run.json
    python -m repro.obs slowest run.json -k 5
    python -m repro.obs export run.json --out trace.json

Run:  python examples/observability.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.models.configs import E2E_MODELS
from repro.obs import (
    Recorder,
    build_metrics,
    phase_attribution,
    slowest_requests,
    span_attribution,
    write_trace,
)
from repro.serve import (
    KVCacheConfig,
    ServerConfig,
    StepLatencyTable,
    generate_requests,
    resolve_latency_table,
    serve,
)

WORLD = 8
N_REQUESTS = 400
MODEL = {m.name: m for m in E2E_MODELS}["Mixtral-8x7B"]


def act1_record() -> Recorder:
    table = resolve_latency_table() or StepLatencyTable(readonly=True)
    table.ensure(MODEL, "tilelink", world=WORLD)
    reqs = generate_requests("chat", N_REQUESTS, seed=0)
    kv = KVCacheConfig(block_tokens=64, pool_blocks=4096)

    recorder = Recorder()
    recorded = serve(reqs, MODEL, "tilelink", table, ServerConfig(),
                     world=WORLD, seed=0, kv=kv, recorder=recorder)
    plain = serve(reqs, MODEL, "tilelink", table, ServerConfig(),
                  world=WORLD, seed=0, kv=kv)
    assert recorded == plain, "recording must never perturb the engine"
    print(f"act 1 — recorded {N_REQUESTS} chat requests: "
          f"{len(recorder.events)} events, makespan "
          f"{recorded.makespan_s:.2f} s, bit-identical to the "
          f"unrecorded run")
    return recorder


def act2_attribution(recorder: Recorder) -> None:
    attr = phase_attribution(recorder.recording())
    print("\nact 2 — phase attribution (engine wall-clock):")
    for phase, seconds in attr["engine_s"].items():
        print(f"  {phase:<10}{seconds:>10.3f} s "
              f"({100 * seconds / attr['makespan_s']:5.1f}%)")
    print(f"  coverage: {attr['coverage']:.6f} (prefill+decode+idle "
          f"partition the makespan by construction)")
    print(f"  overlays: {attr['request_s']['queue']:.2f} req-s queued, "
          f"{attr['request_s']['preempt-stall']:.2f} req-s stalled")


def act3_slowest(recorder: Recorder) -> None:
    print("\nact 3 — the 3 slowest requests:")
    for r in slowest_requests(recorder.recording(), k=3):
        print(f"  req {r['rid']}: latency {r['latency']:.3f} s, "
              f"{r['prompt_tokens']}+{r['output_tokens']} tokens")
        for phase, t0, t1 in r["segments"]:
            print(f"    {phase:<14}{t1 - t0:>9.3f} s")


def act4_metrics(recorder: Recorder) -> None:
    snap = build_metrics(recorder.recording()).snapshot()
    print(f"\nact 4 — metrics snapshot ({len(snap['metrics'])} series, "
          f"strict JSON):")
    for m in snap["metrics"]:
        if m["type"] == "histogram" and m["count"]:
            print(f"  {m['name']}: n={m['count']} p50={m['p50']:.4g} "
                  f"p99={m['p99']:.4g}")


def act5_export(recorder: Recorder) -> None:
    out = Path(tempfile.gettempdir()) / "repro-serve-trace.json"
    write_trace(out, recorder, max_request_tracks=50)
    with open(out) as fh:
        n = len(json.load(fh)["traceEvents"])
    print(f"\nact 5 — perfetto trace: {n} events -> {out}")
    print("  open https://ui.perfetto.dev and drag the file in")


def act6_tuner_spans() -> None:
    from repro.kernels.ag_gemm import ag_gemm_tune_task
    from repro.tuner.sweep import sweep

    recorder = Recorder()
    task = ag_gemm_tune_task(1024, 256, 512, world=4)
    sweep([task], world=4, strategy="random", max_trials=6,
          recorder=recorder)
    print("\nact 6 — tuner wall-time spans by category:")
    for category, cat in sorted(span_attribution(
            recorder.recording()).items(), key=lambda kv: -kv[1]["total_s"]):
        print(f"  {category:<10}{cat['total_s']:>10.4f} s "
              f"x{cat['count']}")


def main() -> None:
    recorder = act1_record()
    act2_attribution(recorder)
    act3_slowest(recorder)
    act4_metrics(recorder)
    act5_export(recorder)
    act6_tuner_spans()


if __name__ == "__main__":
    main()
