"""Tune a whole paper shape table in one sweep through one shared cache.

``repro.tuner.sweep`` is the multi-shape companion of
``examples/autotune_kernel.py``: instead of tuning one kernel on one
shape, it drives a list of :class:`~repro.tuner.TuneTask` — here the
first three Table-4 MoE shapes, both MoE kernels each — through a single
persistent :class:`~repro.tuner.TuneCache`.  Candidate simulation is
deduplicated across tasks that alias in key space, and a warm rerun of
the whole sweep performs zero simulations: cache warm-up is paid once per
table, after which the Figure-9 ``TileLink-tuned`` columns
(``moe_part1_builders(..., tuned=True)``) resolve instantly.

Run:  python examples/autotune_sweep.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.bench.experiments import moe_sweep_tasks
from repro.models.configs import MOE_BENCHES
from repro.tuner import TuneCache, sweep

WORLD = 8
SHAPES = MOE_BENCHES[:3]                 # MoE-1..3 (Table 4)


def main() -> None:
    cache_path = Path(tempfile.mkdtemp(prefix="repro-sweep-")) / "cache.json"
    cache = TuneCache(cache_path)
    tasks = moe_sweep_tasks(SHAPES, world=WORLD)

    print(f"Sweeping {len(tasks)} tuning tasks over "
          f"{', '.join(s.name for s in SHAPES)} (world={WORLD}) ...\n")
    t0 = time.time()
    report = sweep(tasks, world=WORLD, cache=cache, progress=print)
    cold_wall = time.time() - t0

    print()
    print(report.format("Autotune sweep — Table-4 MoE shapes"))
    print(f"\ncold sweep: {report.n_simulated} simulations, "
          f"{cold_wall:.1f}s wall (cache: {cache_path})")

    t0 = time.time()
    warm = sweep(tasks, world=WORLD, cache=cache)
    print(f"warm rerun: {warm.n_simulated} simulations, "
          f"{warm.n_from_cache}/{len(warm.entries)} shapes from cache, "
          f"{time.time() - t0:.2f}s wall")
    assert warm.n_simulated == 0
    assert all(e.from_cache for e in warm.entries)


if __name__ == "__main__":
    main()
