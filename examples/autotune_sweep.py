"""Tune a whole paper shape table in one sweep through one shared cache.

``repro.tuner.sweep`` is the multi-shape companion of
``examples/autotune_kernel.py``: instead of tuning one kernel on one
shape, it drives a list of :class:`~repro.tuner.TuneTask` — here the
first three Table-4 MoE shapes, both MoE kernels each — through a single
persistent :class:`~repro.tuner.TuneCache`.  Candidate simulation is
deduplicated across tasks that alias in key space, and a warm rerun of
the whole sweep performs zero simulations: cache warm-up is paid once per
table, after which the Figure-9 ``TileLink-tuned`` columns
(``moe_part1_builders(..., tuned=True)``) resolve instantly.

``workers=N`` fans the cold, non-aliasing tasks out over a process pool
(``repro.tuner.parallel``): each worker tunes against its own cache file
and the parent merges the results through the flock-protected flush, so
the report — entry order, dedup labels, simulation counts — is identical
to the serial run's.

``strategy="model"`` swaps the exhaustive survivor scan for
*model-guided* search (``repro.tuner.model``): a ridge-regularized
per-axis residual model is trained online on the trials already paid
for, re-ranks the remaining candidates by predicted time, and the
search stops the moment no remaining candidate's optimistic prediction
beats the incumbent.  The fallback is provable — the hand-picked
default is always simulated, so ``best_time <= default_time`` holds no
matter how wrong the model is — and the early-stop budget is folded
into the cache-key search signature, so a model entry never aliases an
exhaustive one.  The third act below tunes the Figure-8 MLP-1 AG+GEMM
shape — whose space is large enough for the probe set to matter —
under both strategies and prints the simulation budget saved (the tiny
MoE spaces above fit inside the probe budget, where model-guided search
simply degrades to exhaustive).

The repo also *ships* a warm cache: ``benchmarks/warm_cache.json`` holds
the exhaustive winners for the full Figure-8 MLP, Table-4 MoE and
Figure-10 attention tables, which is why the Figure-8/9/10 benches grow
a TileLink-tuned column by default with zero simulation at bench time.
After changing a kernel's search space, regenerate it (and satisfy the
CI staleness check) with::

    python benchmarks/refresh_warm_cache.py            # regenerate
    python benchmarks/refresh_warm_cache.py --check    # CI tripwire

Run:  python examples/autotune_sweep.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.bench.experiments import mlp_sweep_tasks, moe_sweep_tasks
from repro.models.configs import MLP_BENCHES, MOE_BENCHES
from repro.tuner import TuneCache, sweep

WORLD = 8
WORKERS = 2
SHAPES = MOE_BENCHES[:3]                 # MoE-1..3 (Table 4)


def main() -> None:
    tmp = Path(tempfile.mkdtemp(prefix="repro-sweep-"))
    cache = TuneCache(tmp / "cache.json")
    tasks = moe_sweep_tasks(SHAPES, world=WORLD)

    print(f"Sweeping {len(tasks)} tuning tasks over "
          f"{', '.join(s.name for s in SHAPES)} "
          f"(world={WORLD}, workers={WORKERS}) ...\n")
    t0 = time.time()
    report = sweep(tasks, world=WORLD, cache=cache, workers=WORKERS,
                   progress=print)
    cold_wall = time.time() - t0

    print()
    print(report.format("Autotune sweep — Table-4 MoE shapes"))
    print(f"\ncold sweep: {report.n_simulated} simulations across "
          f"{WORKERS} workers, {cold_wall:.1f}s wall (cache: {cache.path})")

    t0 = time.time()
    warm = sweep(tasks, world=WORLD, cache=cache, workers=WORKERS)
    print(f"warm rerun: {warm.n_simulated} simulations, "
          f"{warm.n_from_cache}/{len(warm.entries)} shapes from cache, "
          f"{time.time() - t0:.2f}s wall")
    assert warm.n_simulated == 0
    assert all(e.from_cache for e in warm.entries)

    # -- model-guided search: a big space, a fraction of the simulations --
    mlp_tasks = mlp_sweep_tasks(MLP_BENCHES[:1], kernels=("ag_gemm",),
                                world=WORLD)
    print(f"\nTuning {mlp_tasks[0][0]} (Figure 8) under both strategies ...")
    t0 = time.time()
    ex = sweep(mlp_tasks, world=WORLD, cache=TuneCache(tmp / "ex.json"))
    model = sweep(mlp_tasks, world=WORLD,
                  cache=TuneCache(tmp / "model.json"), strategy="model")
    print()
    print(model.format("Autotune sweep — model-guided search"))
    skipped = sum(e.result.n_model_skipped for e in model.entries)
    print(f"\nmodel-guided: {model.n_simulated} simulations where "
          f"exhaustive paid {ex.n_simulated} (the early stop skipped "
          f"{skipped} candidates), {time.time() - t0:.1f}s wall")
    assert model.n_simulated < ex.n_simulated
    assert all(e.result.best_time <= e.result.default_time
               for e in model.entries)


if __name__ == "__main__":
    main()
