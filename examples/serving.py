"""Serving walkthrough: overlapped kernels under heavy traffic.

The paper's figures compare single forward passes; this example composes
the same layers into a continuous-batching inference server
(``repro.serve``) and shows what the overlap buys a *deployment*:

1. price the serving steps once via the shipped step-latency table
   (``benchmarks/latency_table.json`` — zero simulation when warm);
2. serve one hour of seeded chat traffic on Mixtral-8x7B under all
   three methods and compare throughput / TTFT / SLO attainment;
3. sweep the offered load to find each method's saturation knee;
4. compare admission policies (FCFS vs shortest-prompt-first) on the
   long-prompt RAG scenario;
5. squeeze a long-context workload into a finite paged KV pool and
   watch naive admission thrash on preemption/recompute while kv-aware
   admission degrades gracefully.

Every ``serve()`` call below runs the event-driven macro-stepping core
(``repro.serve.engine``): decode steps between batch-composition events
are priced in one vectorized run, so fleet-scale what-ifs — a million
requests, hundreds of configs — finish in seconds while staying
bit-identical to the auditable per-step loop
(``repro.serve.scheduler.serve_reference``).  ``method`` accepts any
registry-contributed serving method (e.g. ``"tilelink-chunk"``) in
addition to the three compared here.

Run:  python examples/serving.py
"""

from __future__ import annotations

from repro.models.configs import E2E_MODELS
from repro.serve import (
    KVCacheConfig,
    ServerConfig,
    SloSpec,
    StepLatencyTable,
    format_reports,
    generate_requests,
    resolve_latency_table,
    serve,
    summarize,
)

WORLD = 8
METHODS = ("torch", "tilelink", "tilelink-tuned")
MODELS = {m.name: m for m in E2E_MODELS}


def load_table() -> StepLatencyTable:
    table = resolve_latency_table() or StepLatencyTable(readonly=True)
    for name in ("Mixtral-8x7B", "LLaMA2-7B"):
        for method in METHODS:
            # warm hits when the shipped table is present; otherwise this
            # builds the ladder in memory (~10s per model on 1 CPU)
            table.ensure(MODELS[name], method, world=WORLD)
    return table


def act1_chat(table: StepLatencyTable) -> None:
    model = MODELS["Mixtral-8x7B"]
    reqs = generate_requests("chat", 2000, seed=0)
    reports = [summarize(serve(reqs, model, m, table, ServerConfig()),
                         "chat", m) for m in METHODS]
    print(format_reports(reports, "Act 1 — chat on Mixtral-8x7B, 8xH800"))
    print("\nThe same offered load (8 req/s): the Torch baseline "
          "saturates — its queue grows without bound and TTFT explodes — "
          "while the overlapped kernels serve every request within SLO.\n")


def act2_saturation(table: StepLatencyTable) -> None:
    model = MODELS["Mixtral-8x7B"]
    print("Act 2 — saturation sweep (chat, SLO: TTFT<=0.5s, TPOT<=25ms)")
    print(f"{'rate':>6} | " + " | ".join(f"{m:>20}" for m in METHODS))
    for rate in (2.0, 4.0, 6.0, 8.0, 12.0):
        cells = []
        for method in METHODS:
            reqs = generate_requests("chat", 600, seed=0, rate_rps=rate)
            rep = summarize(serve(reqs, model, method, table,
                                  ServerConfig()), "chat", method,
                            slo=SloSpec())
            cells.append(f"{rep.throughput_rps:6.2f} rps {100 * rep.slo_attainment:5.1f}%")
        print(f"{rate:6.1f} | " + " | ".join(f"{c:>20}" for c in cells))
    print("\nEach method tracks the offered rate until its knee — the "
          "overlapped kernels push the knee ~2.5x further right, and the "
          "Torch baseline's decode steps alone already blow the "
          "interactive TPOT target at any load.\n")


def act3_policies(table: StepLatencyTable) -> None:
    model = MODELS["LLaMA2-7B"]
    # crank the offered rate past the preset: with no queue contention
    # the admission policies are indistinguishable
    reqs = generate_requests("rag", 1000, seed=0, rate_rps=16.0)
    reports = []
    for policy in ("fcfs", "spf"):
        rep = summarize(
            serve(reqs, model, "tilelink", table,
                  ServerConfig(policy=policy)), "rag", "tilelink",
            policy=policy)
        reports.append(rep)
    print(format_reports(reports, "Act 3 — RAG admission policy "
                                  "(TileLink kernels)"))
    print("\nShortest-prompt-first lets cheap prompts jump the bursty "
          "long-prompt queue: the median TTFT drops while the longest "
          "prompts pay the tail.\n")


def act4_memory_pressure(table: StepLatencyTable) -> None:
    model = MODELS["LLaMA2-7B"]
    reqs = generate_requests("long-context", 200, seed=0, rate_rps=1.0)
    server = ServerConfig(max_batch=32, max_prefill_tokens=16384)
    reports = []
    for admission, victim in (("kv-aware", "last-admitted"),
                              ("naive", "longest-context")):
        kv = KVCacheConfig(block_tokens=64, pool_blocks=512,
                           admission=admission, victim=victim)
        res = serve(reqs, model, "tilelink", table, server, kv=kv)
        rep = summarize(res, "long-context", "tilelink", policy=admission)
        reports.append(rep)
        print(f"  {admission:>8}: {res.n_preemptions} preemptions, "
              f"{res.recompute_tokens} recomputed tokens, "
              f"peak resident {res.peak_resident_tokens} tokens")
    print(format_reports(reports, "Act 4 — long-context in a 32k-token "
                                  "KV pool (TileLink kernels)"))
    print("\nThe pool holds ~5 resident contexts where the batch limit "
          "wants 32.  Naive admission pretends memory is free: every "
          "fresh prompt evicts a running request, whose whole context "
          "must later re-prefill — megatokens of pure recompute, "
          "preemption stalls that blow the decode tail, and a queue "
          "that snowballs the tail TTFT.  KV-aware admission holds "
          "back a watermark of free blocks and simply runs a smaller "
          "batch: same requests, zero preemptions, graceful "
          "degradation.\n")


def main() -> None:
    table = load_table()
    act1_chat(table)
    act2_saturation(table)
    act3_policies(table)
    act4_memory_pressure(table)


if __name__ == "__main__":
    main()
