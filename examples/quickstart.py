"""Quickstart: overlapped AllGather + GEMM on a simulated 8-GPU node.

Runs the tensor-parallel MLP part 1 three ways — non-overlapped
(cuBLAS+NCCL style), decomposed (Async-TP style) and TileLink's overlapped
kernel — verifies they all compute the same result, and prints the timing
comparison (the Table 2 story, at a laptop-friendly size).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import DistContext, SimConfig
from repro.baselines.decompose import ag_gemm_decomposed
from repro.baselines.nonoverlap import ag_gemm_nonoverlap
from repro.kernels.ag_gemm import AgGemmConfig, ag_gemm_overlapped
from repro.util.tables import format_table, format_time

WORLD = 8
M, N, K = 2048, 512, 1024    # gathered tokens x weight-shard width x hidden


def build_inputs(ctx: DistContext, rng: np.random.Generator) -> None:
    shards = [rng.standard_normal((M // WORLD, K)).astype(np.float16)
              for _ in range(WORLD)]
    weights = [rng.standard_normal((K, N)).astype(np.float16)
               for _ in range(WORLD)]
    ctx.bind("x", shards)
    ctx.bind("w", weights)
    ctx.alloc("y", (M, N), "float16")


def reference(ctx: DistContext, rank: int) -> np.ndarray:
    full = np.concatenate(
        [ctx.heap.tensor("x", r).numpy() for r in range(WORLD)]
    ).astype(np.float32)
    return full @ ctx.heap.tensor("w", rank).numpy().astype(np.float32)


def run(method: str, numerics: bool) -> tuple[float, DistContext]:
    ctx = DistContext.create(SimConfig(world_size=WORLD,
                                       execute_numerics=numerics, seed=0))
    rng = np.random.default_rng(0)
    build_inputs(ctx, rng)
    if method == "non-overlap":
        ag_gemm_nonoverlap(ctx, M, N, K, "x", "w", "y")
    elif method == "decomposed":
        ag_gemm_decomposed(ctx, M, N, K, "x", "w", "y")
    else:
        cfg = AgGemmConfig(m=M, n=N, k=K, mode="dma")
        ag_gemm_overlapped(ctx, cfg, "x", "w", "y")
    total = ctx.run()
    return total, ctx


def main() -> None:
    rows = []
    base = None
    for method in ("non-overlap", "decomposed", "tilelink"):
        # numeric mode: verify correctness at this size
        _, ctx = run(method, numerics=True)
        err = max(
            float(np.max(np.abs(
                ctx.heap.tensor("y", r).numpy().astype(np.float32)
                - reference(ctx, r))))
            for r in range(WORLD))
        assert err < 0.5, f"{method} produced wrong results (err={err})"
        # timing mode: the number the paper reports
        t, _ = run(method, numerics=False)
        base = base or t
        rows.append([method, format_time(t), f"{base / t:.2f}x",
                     f"{err:.4f}"])
    print(format_table(
        ["method", "simulated time", "relative", "max |err|"], rows,
        title=f"AG+GEMM, M={M} N={N} K={K}, {WORLD} simulated H800s"))
    print("\nTileLink hides the AllGather under the GEMM: the overlapped "
          "time approaches max(comm, compute).")
    print("Next stop: python examples/serving.py — the same kernels "
          "composed into a continuous-batching server under heavy "
          "traffic (throughput / TTFT / SLO curves, and a paged KV "
          "pool under memory pressure).")
    print("Every shipped kernel is statically verified for deadlocks and "
          "races:\n  python -m repro.analyze --all --strict   "
          "(walkthrough: examples/analyze_kernel.py)")
    print("And every run can explain where its time went:\n"
          "  python -m repro.obs record --out run.json && "
          "python -m repro.obs summarize run.json\n"
          "  (request timelines, metrics, Perfetto export — "
          "walkthrough: examples/observability.py)")


if __name__ == "__main__":
    main()
