"""Autotune an overlapped kernel instead of hand-picking its config.

Every kernel in this repo ships with the paper's hand-picked constants
(``AgGemmConfig(comm_blocks=20, block_mp=128)`` and friends).  The
``repro.tuner`` subsystem searches the §3.1 decoupled design space
instead: declare the axes, let the cost model prune dominated points, and
simulate only the survivors.  On the Figure-8 MLP-1 shape the tuned
GEMM+RS config strictly beats the paper's default (a larger compute tile
wins); the winner is memoised in a JSON cache so the second call returns
instantly without touching the simulator.

Run:  python examples/autotune_kernel.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.kernels.gemm_rs import GemmRsConfig
from repro.models.configs import MLP_BENCHES
from repro.tuner import TuneCache
from repro.util.tables import format_table

WORLD = 8
SHAPE = MLP_BENCHES[0]                   # MLP-1: LLaMA-7B, s=8192 h=4096


def main() -> None:
    m, n = SHAPE.s, SHAPE.h
    k = SHAPE.i // WORLD
    cache_path = Path(tempfile.mkdtemp(prefix="repro-tune-")) / "cache.json"
    cache = TuneCache(cache_path)

    print(f"Tuning GEMM+RS on {SHAPE.name} ({SHAPE.source}), "
          f"m={m} n={n} k={k}, world={WORLD} ...")
    t0 = time.time()
    res = GemmRsConfig.autotune(m, n, k, world=WORLD, cache=cache,
                                full_result=True)
    wall = time.time() - t0

    rows = [
        ["paper config (ms)", res.default_time * 1e3],
        ["tuned config (ms)", res.best_time * 1e3],
        ["speedup", res.default_time / res.best_time],
        ["candidates", res.n_candidates],
        ["pruned by cost model", res.n_pruned],
        ["simulated", res.n_simulated],
        ["tuner wall time (s)", wall],
    ]
    print()
    print(format_table(["column", "value"], rows,
                       title=f"Autotune — GEMM+RS on {SHAPE.name}"))
    print()
    print("winning config:", res.best_config)
    assert res.best_time <= res.default_time

    t0 = time.time()
    res2 = GemmRsConfig.autotune(m, n, k, world=WORLD, cache=cache,
                                 full_result=True)
    print(f"\nsecond call: from_cache={res2.from_cache}, "
          f"simulations={res2.n_simulated}, "
          f"wall={time.time() - t0:.3f}s (cache: {cache_path})")
    assert res2.from_cache and res2.n_simulated == 0

    # mode="auto" does the same resolution inside the kernel launch path:
    # GemmRsConfig(m, n, k, mode="auto") consults the tuner (and its
    # persistent cache) the first time the shape is launched.


if __name__ == "__main__":
    main()
