"""Sequence-parallel attention: AG-KV + flash attention vs baselines.

Reproduces the Figure 10 story at example scale: the Torch baseline (NCCL
AllGather then unfused attention), RingAttention, and TileLink's
copy-engine-overlapped kernel (Figure 6), plus the overlap-ratio metric.

Run:  python examples/sequence_parallel_attention.py
"""

from __future__ import annotations

import numpy as np

from repro import DistContext, SimConfig
from repro.baselines.nonoverlap import attention_nonoverlap
from repro.bench.experiments import attention_overlap_ratio
from repro.kernels.attention import AgAttentionConfig, ag_attention_overlapped
from repro.kernels.ring_attention import ring_attention
from repro.models.configs import AttnShape
from repro.ops.attention import attention_ref, heads_to_seq, seq_to_heads
from repro.util.tables import format_table, format_time

WORLD = 8
CFG_SMALL = AgAttentionConfig(heads=2, head_dim=16, seq_len=512, causal=True,
                              block_q=16, block_kv=16)
SEQ_PAPER = 16384   # one point of the paper's sweep

IMPLS = {
    "Torch": attention_nonoverlap,
    "RingAttn": ring_attention,
    "TileLink": ag_attention_overlapped,
}


def run(cfg: AgAttentionConfig, fn, numerics: bool, seed: int = 3):
    ctx = DistContext.create(SimConfig(world_size=WORLD,
                                       execute_numerics=numerics, seed=seed))
    s_per = cfg.seq_len // WORLD
    rng = np.random.default_rng(seed)
    for name in ("q", "k", "v"):
        if numerics:
            ctx.bind(name, [rng.standard_normal((s_per, cfg.width))
                            .astype(np.float16) for _ in range(WORLD)])
        else:
            ctx.alloc(name, (s_per, cfg.width), "float16")
    ctx.alloc("o", (s_per, cfg.width), "float32")
    fn(ctx, cfg, "q", "k", "v", "o")
    total = ctx.run()
    return total, ctx


def main() -> None:
    # 1) correctness at small scale, against the softmax reference
    for name, fn in IMPLS.items():
        _, ctx = run(CFG_SMALL, fn, numerics=True)
        ks = [ctx.heap.tensor("k", r).numpy() for r in range(WORLD)]
        vs = [ctx.heap.tensor("v", r).numpy() for r in range(WORLD)]
        k_full, v_full = np.concatenate(ks), np.concatenate(vs)
        s_per = CFG_SMALL.seq_len // WORLD
        for r in range(WORLD):
            q = ctx.heap.tensor("q", r).numpy()
            ref = attention_ref(
                seq_to_heads(q, CFG_SMALL.heads, CFG_SMALL.head_dim),
                seq_to_heads(k_full, CFG_SMALL.heads, CFG_SMALL.head_dim),
                seq_to_heads(v_full, CFG_SMALL.heads, CFG_SMALL.head_dim),
                causal=True, q_offset=r * s_per)
            err = np.max(np.abs(ctx.heap.tensor("o", r).numpy()
                                - heads_to_seq(ref)))
            assert err < 0.05, (name, r, err)
    print("all three attention implementations match the softmax reference")

    # 2) timing at one paper-scale point
    cfg = AgAttentionConfig(heads=32, head_dim=128, seq_len=SEQ_PAPER,
                            causal=True)
    rows = []
    base = None
    for name, fn in IMPLS.items():
        t, _ = run(cfg, fn, numerics=False)
        base = base or t
        rows.append([name, format_time(t), f"{base / t:.2f}x"])
    print()
    print(format_table(["implementation", "simulated time", "vs Torch"],
                       rows, title=f"32 heads x 128 dim, seq {SEQ_PAPER}, "
                                   f"{WORLD} simulated H800s"))
    ratio = attention_overlap_ratio(AttnShape("Attn-1", 32, 128,
                                              (SEQ_PAPER,)), SEQ_PAPER)
    print(f"\noverlap ratio at {SEQ_PAPER // 1024}k: {ratio:.3f} "
          "(fraction of the AllGather hidden under flash attention)")


if __name__ == "__main__":
    main()
