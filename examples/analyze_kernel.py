"""Static synchronization analysis: catching overlap bugs before launch.

The tile-centric primitives (`producer_tile_notify`, `consumer_tile_wait`,
...) make compute/communication overlap easy to *write* — and easy to get
subtly wrong: a deleted notify deadlocks the consumer, an inflated wait
threshold can never be reached, a missing wait races a load against a
remote store.  `repro.analyze` finds these statically, by abstractly
interpreting the kernel IR at small concrete world sizes and pairing every
wait site with the notify sites that feed it.

Three acts:

1. analyze a shipped kernel family and show the clean report;
2. plant a classic bug (delete the producer's notify) and watch the
   analyzer pinpoint the orphaned wait, with rule ids and source lines;
3. show the compile-time structural gate rejecting a rank-divergent
   ``barrier_all`` before the kernel can ever run.

Run:  python examples/analyze_kernel.py
"""

from __future__ import annotations

import copy

from repro.analyze import analyze_plan, build_ag_gemm_plan
from repro.compiler.program import compile_kernel
from repro.errors import AnalysisError
from repro.kernels.ag_gemm import _ag_pull_producer
from repro.lang import tl
from repro.lang.dsl import kernel
from repro.lang.ir import Primitive


def act1_clean_sweep() -> None:
    print("=" * 72)
    print("Act 1: the shipped AG+GEMM pull kernel analyzes clean")
    print("=" * 72)
    plan, extra = build_ag_gemm_plan(world=4, mode="pull")
    report = analyze_plan(plan, extra=extra)
    print(f"plan {plan.name}: {len(plan.threads)} abstract threads, "
          f"{len(report.errors)} errors, {len(report.warnings)} warnings")
    print(report.render() or "  (no findings — every wait is fed, every "
          "read guarded, every output tile covered)")


def _strip_notify(body):
    out = []
    for s in body:
        if isinstance(s, Primitive) and s.name == "producer_tile_notify":
            continue
        for blk in s.children():
            blk[:] = _strip_notify(blk)
        out.append(s)
    return out


def act2_seeded_deadlock() -> None:
    print()
    print("=" * 72)
    print("Act 2: delete the producer's notify -> the consumer deadlocks")
    print("=" * 72)
    ir = copy.deepcopy(_ag_pull_producer.ir)
    ir.body = _strip_notify(ir.body)
    plan, extra = build_ag_gemm_plan(
        world=2, mode="pull", ir_overrides={_ag_pull_producer.name: ir})
    report = analyze_plan(plan, extra=extra)
    print(f"plan {plan.name}: {len(report.errors)} errors")
    print(report.render())
    rules = {f.rule for f in report.errors}
    assert "deadlock.unmatched-wait" in rules
    assert "deadlock.stall" in rules
    print("\nThe orphaned consumer_tile_wait is reported with its source "
          "line, and the\nabstract scheduler confirms the hang: no "
          "interleaving lets those waits fire.")


@kernel
def _divergent_barrier(x, channel: tl.BlockChannel, N: tl.constexpr):
    if channel.rank == 0:
        tl.barrier_all()   # rank 0 waits forever: nobody else arrives


def act3_compile_gate() -> None:
    print()
    print("=" * 72)
    print("Act 3: the compile-time gate rejects a rank-divergent barrier")
    print("=" * 72)
    try:
        compile_kernel(_divergent_barrier, dict(N=4))
    except AnalysisError as e:
        for f in e.findings:
            print(f"  {f.render()}")
        print("\nCompilation refused: a barrier_all under a rank-dependent "
              "branch is a\ncollective only some ranks join — a guaranteed "
              "hang on real hardware.")
    else:
        raise AssertionError("expected the structural gate to fire")


def main() -> None:
    act1_clean_sweep()
    act2_seeded_deadlock()
    act3_compile_gate()
    print("\nSweep every registered kernel family yourself:")
    print("  PYTHONPATH=src python -m repro.analyze --all --strict")


if __name__ == "__main__":
    main()
