"""Autotuning sweep: tune whole paper shape tables through one cache.

``repro.tuner.sweep`` drives the Table-4 MoE shapes and the Figure-8 MLP
shapes through a single shared :class:`~repro.tuner.TuneCache`: candidate
simulations are deduplicated across shapes that alias in key space, and a
warm rerun of the sweep performs **zero** simulations — every shape
resolves ``from_cache=True``.  The tuned configs are then surfaced as the
``TileLink-tuned`` column of the Figure-8/9 tables
(``*_builders(..., tuned=True)``).

``REPRO_FAST=1`` (the CI path) swaps the paper shapes for a tiny shape
table so the ``--json`` emitter contract can be validated in seconds.
``REPRO_SWEEP_WORKERS=N`` routes the sweep through the process-pool
execution layer (``sweep(..., workers=N)``); ``REPRO_SWEEP_ROWS=PATH``
additionally dumps the cold sweep's ``SweepReport.rows()`` as strict
JSON for ``validate_bench_json.py --schema sweep``;
``REPRO_SWEEP_STRATEGY=model`` (or ``random``/``halving``) swaps the
search strategy driving the sweep — CI runs the tiny table under both
``exhaustive`` and ``model`` and validates both JSON contracts.
"""

from __future__ import annotations

import json
import os

from benchmarks.common import FAST, emit_json, run_once
from repro.bench.experiments import (
    ag_gemm_builders,
    mlp_sweep_tasks,
    moe_part2_builders,
    moe_sweep_tasks,
    run_method_times,
)
from repro.models.configs import MLP_BENCHES, MOE_BENCHES, MlpShape, MoeShape
from repro.tuner import TuneCache, sweep

WORLD = 8
#: REPRO_SWEEP_WORKERS=N fans the sweep out over a process pool.
WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS", "0") or 0) or None
#: REPRO_SWEEP_STRATEGY picks the search strategy for the table sweeps.
STRATEGY = os.environ.get("REPRO_SWEEP_STRATEGY", "exhaustive")

#: tiny shape table (FAST/CI): same structure as Table 4, minutes -> seconds
TINY_MOE = [
    MoeShape("MoE-tiny-1", 2048, 256, 512, 4, 2),
    MoeShape("MoE-tiny-2", 2048, 256, 1024, 4, 2),
    MoeShape("MoE-tiny-3", 4096, 256, 512, 4, 2),
]
MOE_SHAPES = TINY_MOE if FAST else MOE_BENCHES[:3]

TINY_MLP = MlpShape("MLP-tiny", 2048, 512, 2048, "tiny")
MLP_SHAPE = TINY_MLP if FAST else MLP_BENCHES[0]
MOE_SHAPE = TINY_MOE[0] if FAST else MOE_BENCHES[0]


def test_autotune_sweep_table4(benchmark, tmp_path) -> None:
    """Cold sweep over >= 3 Table-4 shapes, then a zero-simulation rerun."""
    cache = TuneCache(tmp_path / "sweep.json")
    tasks = moe_sweep_tasks(MOE_SHAPES, world=WORLD)

    report = run_once(benchmark,
                      lambda: sweep(tasks, world=WORLD, cache=cache,
                                    strategy=STRATEGY, workers=WORKERS))
    print()
    print(report.format("Autotune sweep — Table-4 MoE shapes"))
    for row in report.rows():
        if row["default_ms"] is not None:
            emit_json("Autotune sweep — Table 4", f"{row['name']}/default",
                      row["default_ms"] * 1e-3)
        emit_json("Autotune sweep — Table 4", f"{row['name']}/tuned",
                  row["tuned_ms"] * 1e-3)
    rows_path = os.environ.get("REPRO_SWEEP_ROWS")
    if rows_path:
        with open(rows_path, "w") as fh:
            # strict JSON: a NaN/Infinity leaking into the rows is a bug
            # (validate_bench_json.py rejects the bare-constant form)
            json.dump(report.rows(), fh, indent=1, sort_keys=True,
                      allow_nan=False)

    assert len(report.entries) >= 3
    # tuning can only match or improve on the hand-picked point
    assert all(e.result.best_time <= e.result.default_time
               for e in report.entries)

    # warm rerun: the shared cache answers every shape without simulating
    warm = sweep(tasks, world=WORLD, cache=cache, strategy=STRATEGY,
                 workers=WORKERS)
    assert warm.n_simulated == 0
    assert all(e.from_cache for e in warm.entries)
    assert [e.result.best for e in warm.entries] == \
        [e.result.best for e in report.entries]


def test_model_strategy_spends_fewer_simulations(benchmark, tmp_path) -> None:
    """The model-guided strategy's whole point: strictly fewer
    full-fidelity simulations than exhaustive over the same (tiny MLP)
    shape table, while every shape keeps ``best_time <= default_time``."""
    tasks = mlp_sweep_tasks([TINY_MLP], world=WORLD)

    def both():
        ex = sweep(tasks, world=WORLD, cache=TuneCache(tmp_path / "ex.json"),
                   workers=WORKERS)
        mo = sweep(tasks, world=WORLD, cache=TuneCache(tmp_path / "mo.json"),
                   strategy="model", workers=WORKERS)
        return ex, mo

    ex, mo = run_once(benchmark, both)
    print(f"\nexhaustive: {ex.n_simulated} simulations, "
          f"model: {mo.n_simulated} simulations "
          f"({sum(e.result.n_model_skipped for e in mo.entries)} skipped "
          f"by the early stop)")
    for name, t in (("exhaustive", ex), ("model", mo)):
        for row in t.rows():
            emit_json("Autotune strategy budget — tiny MLP",
                      f"{row['name']}/{name}", row["tuned_ms"] * 1e-3)
    assert mo.n_simulated < ex.n_simulated
    assert all(e.result.best_time <= e.result.default_time
               for e in mo.entries)


def test_fig8_tuned_column(benchmark, tmp_path) -> None:
    """The tuned=True flag adds a TileLink-tuned column that is never
    slower than the paper-config TileLink column."""
    cache = TuneCache(tmp_path / "tune.json")
    builders = ag_gemm_builders(MLP_SHAPE, WORLD, tuned=True,
                                tune_cache=cache, tune_max_trials=4)
    times = run_once(benchmark, lambda: run_method_times(builders))
    for name, t in times.items():
        emit_json("Figure 8 tuned column — AG+GEMM", f"{MLP_SHAPE.name}/{name}", t)
    assert "TileLink-tuned" in times
    assert times["TileLink-tuned"] <= times["TileLink"] * 1.001


def test_fig9_tuned_column(benchmark, tmp_path) -> None:
    """Same contract for the MoE part-2 table (Figure 9, middle)."""
    cache = TuneCache(tmp_path / "tune.json")
    builders = moe_part2_builders(MOE_SHAPE, WORLD, tuned=True,
                                  tune_cache=cache)
    times = run_once(benchmark, lambda: run_method_times(builders))
    for name, t in times.items():
        emit_json("Figure 9 tuned column — MoE part 2",
                  f"{MOE_SHAPE.name}/{name}", t)
    assert "TileLink-tuned" in times
    assert times["TileLink-tuned"] <= times["TileLink"] * 1.001
