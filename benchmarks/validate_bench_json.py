"""Validate the machine-readable bench emitters' JSON schemas.

Three row shapes are covered, selected with ``--schema``:

* ``bench`` (default) — the ``--json PATH`` option of the benchmark
  suite (see ``benchmarks/common.py``) dumps every simulated measurement
  as ``{"bench": str, "config": str, "time_s": float}`` rows; successive
  PRs diff these files to track a perf trajectory.
* ``sweep`` — ``SweepReport.rows()`` dumps (one object per shape) as
  written by ``benchmarks/bench_autotune_sweep.py`` when
  ``REPRO_SWEEP_ROWS`` is set.  A cache hit without a recorded baseline
  carries ``default_ms``/``speedup`` as JSON ``null`` — and *only* the
  null form: a bare ``NaN``/``Infinity`` token is not valid JSON, so the
  file is parsed with ``parse_constant`` rejecting constants outright.
* ``serving`` — ``ServingReport.row()`` dumps (one object per
  (scenario, method) cell) as written by ``benchmarks/bench_serving.py``
  when ``REPRO_SERVE_ROWS`` is set: throughput, TTFT/TPOT percentiles,
  queue depth/wait, preemption and recompute totals, pool occupancy and
  SLO attainment.  TPOT is ``null`` (on *both* percentile fields)
  exactly when no request ever decoded; the pool-occupancy pair is
  ``null`` together exactly when the run had no KV pool.
* ``serving-perf`` — the engine-throughput smoke rows written by
  ``benchmarks/bench_serving_perf.py`` when ``REPRO_SERVE_PERF_ROWS``
  is set: wall seconds and simulated requests per wall second for the
  acceptance workload, plus the floor the run was held to.  A row whose
  ``sim_rps`` sits below its ``min_sim_rps`` fails validation — the
  floor travels with the measurement, so a stale file cannot pass.
* ``obs-trace`` — Chrome trace-event JSON written by
  ``repro.obs.export.write_trace`` / ``python -m repro.obs export``
  (dict top-level, not a row list): metadata events first, every slice
  with finite non-negative ``ts``/``dur`` in non-decreasing ``ts``
  order, per-request ``cat:"phase"`` slices restricted to the request
  lifecycle vocabulary and engine slices to prefill/decode/idle — the
  names Perfetto users grep for, pinned so a rename cannot slip out
  silently.
* ``obs-metrics`` — ``MetricsRegistry.snapshot()`` payloads
  (``{"format": "repro-obs-metrics/1", "metrics": [...]}``): counters
  are non-negative ints, gauges numbers-or-null, and a histogram's
  ``max``/``p50``/``p90``/``p99`` are null *together* exactly when its
  ``count`` is zero.

This validator is the CI tripwire that keeps the contracts from
rotting: it fails loudly when the file is missing, empty, non-strict
JSON, or any row drifts off schema.

Usage:  python benchmarks/validate_bench_json.py PATH [--min-rows N]
          [--schema bench|sweep|serving|serving-perf|obs-trace|obs-metrics]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable

#: schemas: field -> tuple of allowed types; None in the tuple = nullable.
#: bool is only accepted where it is listed explicitly (it subclasses int).
ROW_SCHEMA = {
    "bench": (str,),
    "config": (str,),
    "time_s": (int, float),
}

SWEEP_ROW_SCHEMA = {
    "name": (str,),
    "kernel": (str,),
    "shape": (str,),
    "default_ms": (int, float, None),
    "tuned_ms": (int, float),
    "speedup": (int, float, None),
    "n_simulated": (int,),
    "from_cache": (bool,),
    "deduped_from": (str, None),
    "best": (dict,),
}

SERVING_ROW_SCHEMA = {
    "scenario": (str,),
    "method": (str,),
    "policy": (str,),
    "n_requests": (int,),
    "makespan_s": (int, float),
    "throughput_rps": (int, float),
    "output_tok_per_s": (int, float),
    "ttft_p50_s": (int, float),
    "ttft_p99_s": (int, float),
    "tpot_p50_s": (int, float, None),
    "tpot_p99_s": (int, float, None),
    "queue_depth_p50": (int, float),
    "queue_depth_max": (int,),
    "slo_attainment": (int, float),
    "queue_wait_p50_s": (int, float),
    "queue_wait_p99_s": (int, float),
    "preempt_stall_p99_s": (int, float),
    "n_preemptions": (int,),
    "recompute_tokens": (int,),
    "pool_occupancy_p50": (int, float, None),
    "pool_occupancy_max": (int, float, None),
}

SERVING_PERF_ROW_SCHEMA = {
    "scenario": (str,),
    "method": (str,),
    "n_requests": (int,),
    "wall_s": (int, float),
    "sim_rps": (int, float),
    "min_sim_rps": (int, float),
}


def _reject_constant(token: str) -> float:
    raise ValueError(f"non-finite JSON constant {token!r} is not allowed; "
                     f"emit null instead")


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _validate_against(rows: object, schema: dict[str, tuple],
                      min_rows: int,
                      row_check: Callable[[int, dict], list[str]]
                      ) -> list[str]:
    """Generic row validator: shape, unknown/missing fields, types (with
    nullability), then ``row_check`` for per-schema value rules."""
    errors: list[str] = []
    if not isinstance(rows, list):
        return [f"top-level JSON must be a list, got {type(rows).__name__}"]
    if len(rows) < min_rows:
        errors.append(f"expected >= {min_rows} rows, got {len(rows)}")
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            errors.append(f"row {i}: not an object: {row!r}")
            continue
        extra = set(row) - set(schema)
        if extra:
            errors.append(f"row {i}: unknown fields {sorted(extra)}")
        for field, types in schema.items():
            if field not in row:
                errors.append(f"row {i}: missing field {field!r}")
                continue
            value = row[field]
            if value is None:
                if None not in types:
                    errors.append(f"row {i}: field {field!r} must not be "
                                  f"null")
                continue
            concrete = tuple(t for t in types if t is not None)
            if not isinstance(value, concrete) or (
                    isinstance(value, bool) and bool not in concrete):
                errors.append(f"row {i}: field {field!r} has wrong type "
                              f"{type(value).__name__}")
        errors.extend(row_check(i, row))
    return errors


def _bench_row_check(i: int, row: dict) -> list[str]:
    errors = []
    if _is_number(row.get("time_s")) and not row["time_s"] > 0:
        errors.append(f"row {i}: time_s must be positive, "
                      f"got {row['time_s']}")
    for field in ("bench", "config"):
        if isinstance(row.get(field), str) and not row[field].strip():
            errors.append(f"row {i}: field {field!r} is empty")
    return errors


def _sweep_row_check(i: int, row: dict) -> list[str]:
    errors = []
    if _is_number(row.get("tuned_ms")) and not row["tuned_ms"] > 0:
        errors.append(f"row {i}: tuned_ms must be positive, "
                      f"got {row['tuned_ms']}")
    # a missing baseline must take the null form on BOTH fields: a null
    # default with a numeric speedup (or vice versa) means the emitter
    # fabricated one side (the old 0.0/NaN bug)
    if (row.get("default_ms") is None) != (row.get("speedup") is None):
        errors.append(f"row {i}: default_ms and speedup must be null "
                      f"together (got default_ms={row.get('default_ms')!r}"
                      f", speedup={row.get('speedup')!r})")
    return errors


def _serving_row_check(i: int, row: dict) -> list[str]:
    errors = []
    for field in ("scenario", "method", "policy"):
        if isinstance(row.get(field), str) and not row[field].strip():
            errors.append(f"row {i}: field {field!r} is empty")
    for field in ("n_requests", "makespan_s", "throughput_rps",
                  "output_tok_per_s", "ttft_p50_s", "ttft_p99_s"):
        if _is_number(row.get(field)) and not row[field] > 0:
            errors.append(f"row {i}: field {field!r} must be positive, "
                          f"got {row[field]}")
    if _is_number(row.get("slo_attainment")) and \
            not 0.0 <= row["slo_attainment"] <= 1.0:
        errors.append(f"row {i}: slo_attainment must be in [0, 1], "
                      f"got {row['slo_attainment']}")
    # TPOT is null exactly when no request decoded — on both fields, or
    # the emitter fabricated one side
    if (row.get("tpot_p50_s") is None) != (row.get("tpot_p99_s") is None):
        errors.append(f"row {i}: tpot_p50_s and tpot_p99_s must be null "
                      f"together (got {row.get('tpot_p50_s')!r}, "
                      f"{row.get('tpot_p99_s')!r})")
    for field in ("queue_wait_p50_s", "queue_wait_p99_s",
                  "preempt_stall_p99_s", "n_preemptions",
                  "recompute_tokens"):
        if _is_number(row.get(field)) and row[field] < 0:
            errors.append(f"row {i}: field {field!r} must be >= 0, "
                          f"got {row[field]}")
    for field in ("pool_occupancy_p50", "pool_occupancy_max"):
        if _is_number(row.get(field)) and not 0.0 <= row[field] <= 1.0:
            errors.append(f"row {i}: field {field!r} must be in [0, 1], "
                          f"got {row[field]}")
    # pool stats are null exactly when the run had no KV pool — same
    # null-together discipline as TPOT
    if (row.get("pool_occupancy_p50") is None) != \
            (row.get("pool_occupancy_max") is None):
        errors.append(f"row {i}: pool_occupancy_p50 and pool_occupancy_max "
                      f"must be null together "
                      f"(got {row.get('pool_occupancy_p50')!r}, "
                      f"{row.get('pool_occupancy_max')!r})")
    return errors


def _serving_perf_row_check(i: int, row: dict) -> list[str]:
    errors = []
    for field in ("scenario", "method"):
        if isinstance(row.get(field), str) and not row[field].strip():
            errors.append(f"row {i}: field {field!r} is empty")
    for field in ("n_requests", "wall_s", "sim_rps", "min_sim_rps"):
        if _is_number(row.get(field)) and not row[field] > 0:
            errors.append(f"row {i}: field {field!r} must be positive, "
                          f"got {row[field]}")
    if _is_number(row.get("sim_rps")) and _is_number(row.get("min_sim_rps")) \
            and row["sim_rps"] < row["min_sim_rps"]:
        errors.append(f"row {i}: sim_rps {row['sim_rps']:.0f} is below the "
                      f"min_sim_rps floor {row['min_sim_rps']:.0f} — the "
                      f"serving engine regressed")
    return errors


#: Allowed trace-event phase codes: metadata, complete slice, counter
#: sample, instant marker — everything the exporter emits.
_TRACE_PHS = ("M", "X", "C", "i")
#: ``cat:"phase"`` slice names: the request lifecycle vocabulary
#: (``idle`` is engine-level and never appears on a request track).
_REQUEST_PHASE_NAMES = ("queue", "prefill", "decode", "preempt-stall")
#: ``cat:"engine"`` names: the engine-track slices plus the two
#: KV-pool watermark-crossing instants.
_ENGINE_NAMES = ("prefill", "decode", "idle",
                 "watermark_above", "watermark_below")


def validate_obs_trace(doc: object, min_rows: int = 1) -> list[str]:
    """Return a list of obs-trace-schema violations (empty == valid).

    ``min_rows`` counts *slices* (non-metadata events): a trace with
    nothing but process/thread names renders an empty timeline.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"top-level JSON must be an object, "
                f"got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"traceEvents must be a list, "
                f"got {type(events).__name__}"]
    n_slices = 0
    last_ts = None
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {i}: not an object: {event!r}")
            continue
        ph = event.get("ph")
        if ph not in _TRACE_PHS:
            errors.append(f"event {i}: unknown ph {ph!r} "
                          f"(allowed: {list(_TRACE_PHS)})")
            continue
        ts = event.get("ts")
        if not _is_number(ts) or ts < 0:
            errors.append(f"event {i}: ts must be a number >= 0, "
                          f"got {ts!r}")
            continue
        if ph == "M":
            if n_slices:
                errors.append(f"event {i}: metadata event after the "
                              f"first slice — metadata must come first")
            if event.get("name") not in ("process_name", "thread_name"):
                errors.append(f"event {i}: metadata name must be "
                              f"process_name/thread_name, "
                              f"got {event.get('name')!r}")
            args = event.get("args")
            if not (isinstance(args, dict)
                    and isinstance(args.get("name"), str)
                    and args["name"].strip()):
                errors.append(f"event {i}: metadata args.name must be a "
                              f"non-empty string")
            continue
        # slices: file order must be non-decreasing ts (the exporter
        # sorts; an unsorted file means a foreign/hand-edited producer)
        n_slices += 1
        if last_ts is not None and ts < last_ts:
            errors.append(f"event {i}: ts {ts} decreases (previous "
                          f"slice at {last_ts}) — slices must be sorted")
        last_ts = ts
        name = event.get("name")
        if not (isinstance(name, str) and name.strip()):
            errors.append(f"event {i}: name must be a non-empty string")
            continue
        if ph == "X":
            dur = event.get("dur")
            if not _is_number(dur) or dur < 0:
                errors.append(f"event {i}: dur must be a number >= 0, "
                              f"got {dur!r}")
            cat = event.get("cat")
            if not (isinstance(cat, str) and cat.strip()):
                errors.append(f"event {i}: slice cat must be a non-empty "
                              f"string")
            elif cat == "phase" and name not in _REQUEST_PHASE_NAMES:
                errors.append(f"event {i}: unknown request phase {name!r} "
                              f"(allowed: {list(_REQUEST_PHASE_NAMES)})")
            elif cat == "engine" and name not in _ENGINE_NAMES:
                errors.append(f"event {i}: unknown engine slice {name!r} "
                              f"(allowed: {list(_ENGINE_NAMES)})")
        elif ph == "C":
            args = event.get("args")
            if not (isinstance(args, dict) and args
                    and all(_is_number(v) for v in args.values())):
                errors.append(f"event {i}: counter args must be a "
                              f"non-empty object of numbers")
        elif ph == "i" and event.get("cat") == "engine" \
                and name not in _ENGINE_NAMES:
            errors.append(f"event {i}: unknown engine instant {name!r} "
                          f"(allowed: {list(_ENGINE_NAMES)})")
    if n_slices < min_rows:
        errors.append(f"expected >= {min_rows} slices (non-metadata "
                      f"events), got {n_slices}")
    return errors


#: Fields (beyond name/type/labels) each metric type must carry.
_METRIC_FIELDS = {
    "counter": ("value",),
    "gauge": ("value",),
    "histogram": ("count", "max", "p50", "p90", "p99"),
}


def _obs_metric_check(i: int, row: dict) -> list[str]:
    errors = []
    mtype = row["type"]
    if mtype == "counter":
        value = row.get("value")
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            errors.append(f"metric {i}: counter value must be an int "
                          f">= 0, got {value!r}")
    elif mtype == "gauge":
        value = row.get("value")
        if value is not None and not _is_number(value):
            errors.append(f"metric {i}: gauge value must be a number or "
                          f"null, got {value!r}")
    else:
        count = row.get("count")
        if not isinstance(count, int) or isinstance(count, bool) \
                or count < 0:
            errors.append(f"metric {i}: histogram count must be an int "
                          f">= 0, got {count!r}")
            return errors
        quantiles = ("max", "p50", "p90", "p99")
        nulls = [q for q in quantiles if row.get(q) is None]
        bad = [q for q in quantiles
               if row.get(q) is not None and not _is_number(row.get(q))]
        if bad:
            errors.append(f"metric {i}: histogram fields {bad} must be "
                          f"numbers or null")
        elif count == 0 and len(nulls) != len(quantiles):
            errors.append(f"metric {i}: empty histogram must have null "
                          f"{list(quantiles)} (null-together), "
                          f"got non-null {sorted(set(quantiles) - set(nulls))}")
        elif count > 0 and nulls:
            errors.append(f"metric {i}: non-empty histogram "
                          f"(count={count}) has null fields {nulls}")
    return errors


def validate_obs_metrics(doc: object, min_rows: int = 1) -> list[str]:
    """Return a list of obs-metrics-schema violations (empty == valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"top-level JSON must be an object, "
                f"got {type(doc).__name__}"]
    if doc.get("format") != "repro-obs-metrics/1":
        return [f"format must be 'repro-obs-metrics/1', "
                f"got {doc.get('format')!r}"]
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        return [f"metrics must be a list, got {type(metrics).__name__}"]
    if len(metrics) < min_rows:
        errors.append(f"expected >= {min_rows} metrics, "
                      f"got {len(metrics)}")
    last_key = None
    for i, row in enumerate(metrics):
        if not isinstance(row, dict):
            errors.append(f"metric {i}: not an object: {row!r}")
            continue
        name = row.get("name")
        if not (isinstance(name, str) and name.strip()):
            errors.append(f"metric {i}: name must be a non-empty string")
            continue
        labels = row.get("labels")
        if not isinstance(labels, dict) or not all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in labels.items()):
            errors.append(f"metric {i}: labels must be an object of "
                          f"strings, got {labels!r}")
            continue
        mtype = row.get("type")
        if mtype not in _METRIC_FIELDS:
            errors.append(f"metric {i}: unknown type {mtype!r} "
                          f"(allowed: {sorted(_METRIC_FIELDS)})")
            continue
        expected = {"name", "type", "labels", *_METRIC_FIELDS[mtype]}
        if set(row) != expected:
            errors.append(f"metric {i}: fields {sorted(row)} != expected "
                          f"{sorted(expected)} for a {mtype}")
            continue
        # the snapshot sorts by (name, label items) so reruns diff
        # cleanly; an unsorted file means a foreign producer
        key = (name, tuple(sorted(labels.items())))
        if last_key is not None and key < last_key:
            errors.append(f"metric {i}: {name!r} out of sorted "
                          f"(name, labels) order")
        last_key = key
        errors.extend(_obs_metric_check(i, row))
    return errors


def validate_rows(rows: object, min_rows: int = 1) -> list[str]:
    """Return a list of measurement-schema violations (empty == valid)."""
    return _validate_against(rows, ROW_SCHEMA, min_rows, _bench_row_check)


def validate_sweep_rows(rows: object, min_rows: int = 1) -> list[str]:
    """Return a list of sweep-rows-schema violations (empty == valid)."""
    return _validate_against(rows, SWEEP_ROW_SCHEMA, min_rows,
                             _sweep_row_check)


def validate_serving_rows(rows: object, min_rows: int = 1) -> list[str]:
    """Return a list of serving-rows-schema violations (empty == valid)."""
    return _validate_against(rows, SERVING_ROW_SCHEMA, min_rows,
                             _serving_row_check)


def validate_serving_perf_rows(rows: object, min_rows: int = 1) -> list[str]:
    """Return a list of serving-perf-schema violations (empty == valid)."""
    return _validate_against(rows, SERVING_PERF_ROW_SCHEMA, min_rows,
                             _serving_perf_row_check)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="JSON file emitted by --json or "
                                     "REPRO_SWEEP_ROWS")
    parser.add_argument("--min-rows", type=int, default=1,
                        help="minimum number of rows")
    parser.add_argument("--schema",
                        choices=("bench", "sweep", "serving",
                                 "serving-perf", "obs-trace",
                                 "obs-metrics"),
                        default="bench",
                        help="row shape to validate (default: bench)")
    args = parser.parse_args(argv)

    try:
        with open(args.path) as fh:
            rows = json.load(fh, parse_constant=_reject_constant)
    except OSError as exc:
        print(f"FAIL: cannot read {args.path}: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"FAIL: {args.path} is not valid strict JSON: {exc}",
              file=sys.stderr)
        return 1

    validate = {"bench": validate_rows, "sweep": validate_sweep_rows,
                "serving": validate_serving_rows,
                "serving-perf": validate_serving_perf_rows,
                "obs-trace": validate_obs_trace,
                "obs-metrics": validate_obs_metrics}[args.schema]
    errors = validate(rows, min_rows=args.min_rows)
    if errors:
        for err in errors:
            print(f"FAIL: {err}", file=sys.stderr)
        return 1
    # the obs schemas have dict top-levels; count their payload entries
    if args.schema == "obs-trace":
        n = sum(1 for e in rows["traceEvents"] if e.get("ph") != "M")
        unit = "slices"
    elif args.schema == "obs-metrics":
        n, unit = len(rows["metrics"]), "metrics"
    else:
        n, unit = len(rows), f"{args.schema} rows"
    print(f"OK: {args.path} — {n} {unit}, schema valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
