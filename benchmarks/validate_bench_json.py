"""Validate the machine-readable bench emitter's JSON schema.

The ``--json PATH`` option of the benchmark suite (see
``benchmarks/common.py``) dumps every simulated measurement as
``{"bench": str, "config": str, "time_s": float}`` rows; successive PRs
diff these files to track a perf trajectory.  This validator is the CI
tripwire that keeps the contract from rotting: it fails loudly when the
file is missing, empty, or any row drifts off schema.

Usage:  python benchmarks/validate_bench_json.py PATH [--min-rows N]
"""

from __future__ import annotations

import argparse
import json
import sys

#: the exact per-row schema: field name -> required type(s)
ROW_SCHEMA = {"bench": str, "config": str, "time_s": (int, float)}


def validate_rows(rows: object, min_rows: int = 1) -> list[str]:
    """Return a list of schema violations (empty == valid)."""
    errors: list[str] = []
    if not isinstance(rows, list):
        return [f"top-level JSON must be a list, got {type(rows).__name__}"]
    if len(rows) < min_rows:
        errors.append(f"expected >= {min_rows} measurement rows, "
                      f"got {len(rows)}")
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            errors.append(f"row {i}: not an object: {row!r}")
            continue
        extra = set(row) - set(ROW_SCHEMA)
        if extra:
            errors.append(f"row {i}: unknown fields {sorted(extra)}")
        for field, types in ROW_SCHEMA.items():
            if field not in row:
                errors.append(f"row {i}: missing field {field!r}")
            elif not isinstance(row[field], types) or \
                    isinstance(row[field], bool):
                errors.append(f"row {i}: field {field!r} has wrong type "
                              f"{type(row[field]).__name__}")
        if isinstance(row.get("time_s"), (int, float)) and \
                not isinstance(row.get("time_s"), bool):
            if not row["time_s"] > 0:
                errors.append(f"row {i}: time_s must be positive, "
                              f"got {row['time_s']}")
        for field in ("bench", "config"):
            if isinstance(row.get(field), str) and not row[field].strip():
                errors.append(f"row {i}: field {field!r} is empty")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="JSON file emitted by --json")
    parser.add_argument("--min-rows", type=int, default=1,
                        help="minimum number of measurement rows")
    args = parser.parse_args(argv)

    try:
        with open(args.path) as fh:
            rows = json.load(fh)
    except OSError as exc:
        print(f"FAIL: cannot read {args.path}: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"FAIL: {args.path} is not valid JSON: {exc}", file=sys.stderr)
        return 1

    errors = validate_rows(rows, min_rows=args.min_rows)
    if errors:
        for err in errors:
            print(f"FAIL: {err}", file=sys.stderr)
        return 1
    print(f"OK: {args.path} — {len(rows)} measurement rows, schema valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
