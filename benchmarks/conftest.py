"""Pytest glue for the benchmark suite.

Re-exports the ``--json`` result-emitter hooks implemented in
``benchmarks/common.py`` (pytest only discovers hooks in conftest files
and plugins).
"""

from benchmarks.common import (  # noqa: F401
    pytest_addoption,
    pytest_configure,
    pytest_sessionfinish,
)
