"""Ablations A1/A2: the decoupled design space of §3.1.

The paper argues each subspace choice matters: tile sizes may differ
between comm and compute (A1), and pull vs push / DMA vs SM / the number
of communication SMs are real tradeoffs (A2, Figure 2).  These sweeps
regenerate the evidence on MLP-1.
"""

from __future__ import annotations

from benchmarks.common import print_relative_table, run_once
from repro.bench.harness import run_builder
from repro.kernels.ag_gemm import AgGemmConfig, ag_gemm_overlapped
from repro.kernels.gemm_rs import GemmRsConfig, gemm_rs_overlapped
from repro.models.configs import MLP_BENCHES
from repro.util.tables import format_table

SHAPE = MLP_BENCHES[0]
WORLD = 8


def _ag_time(mode: str, comm_blocks: int = 20, block_mp: int = 128) -> float:
    m, k = SHAPE.s, SHAPE.h
    n = SHAPE.i // WORLD

    def build(ctx) -> None:
        ctx.alloc("x", (m // WORLD, k), "float16", fill=None)
        ctx.alloc("w", (k, n), "float16", fill=None)
        ctx.alloc("y", (m, n), "float16", fill=None)
        cfg = AgGemmConfig(m=m, n=n, k=k, mode=mode, comm_blocks=comm_blocks,
                           block_mp=block_mp)
        ag_gemm_overlapped(ctx, cfg, "x", "w", "y")

    return run_builder(build, world=WORLD)


def _rs_time(block_mr: int, block_nr: int, mode: str = "hybrid") -> float:
    m, n = SHAPE.s, SHAPE.h
    k = SHAPE.i // WORLD

    def build(ctx) -> None:
        ctx.alloc("x", (m, k), "float16", fill=None)
        ctx.alloc("w", (k, n), "float16", fill=None)
        ctx.alloc("y", (m // WORLD, n), "float32", fill=None)
        cfg = GemmRsConfig(m=m, n=n, k=k, mode=mode,
                           block_mr=block_mr, block_nr=block_nr)
        gemm_rs_overlapped(ctx, cfg, "x", "w", "y")

    return run_builder(build, world=WORLD)


def test_ablation_tile_size_coupling(benchmark) -> None:
    """A1: decoupled comm tiles vs comm tile forced == compute tile."""
    def sweep() -> dict[str, float]:
        return {
            "coupled (128x128)": _rs_time(128, 128, mode="ring"),
            "decoupled (128x256) ring": _rs_time(128, 256, mode="ring"),
            "decoupled (128x256) hybrid": _rs_time(128, 256, mode="hybrid"),
        }

    res = run_once(benchmark, sweep)
    print()
    print(format_table(["configuration", "ms"],
                       [[k, v * 1e3] for k, v in res.items()],
                       title="A1 — GEMM+RS tile-size (de)coupling, MLP-1"))
    # decoupling the comm tile helps the ring kernel; the hybrid resource
    # mapping (DMA scatter) helps further — the paper's §3.1 claim chain
    assert res["decoupled (128x256) ring"] <= res["coupled (128x128)"] * 1.02
    assert res["decoupled (128x256) hybrid"] < res["coupled (128x128)"]


def test_ablation_resource_mapping(benchmark) -> None:
    """A2: pull vs push vs DMA, and the comm-SM count sweep (Fig. 2c)."""
    def sweep() -> dict[str, float]:
        out = {
            "AG on DMA engine": _ag_time("dma"),
            "AG pull on 20 SMs": _ag_time("pull", comm_blocks=20),
            "AG push on 20 SMs": _ag_time("push", comm_blocks=20),
            "AG pull on 8 SMs": _ag_time("pull", comm_blocks=8),
            "AG pull on 48 SMs": _ag_time("pull", comm_blocks=48),
        }
        return out

    res = run_once(benchmark, sweep)
    print()
    print(format_table(["configuration", "ms"],
                       [[k, v * 1e3] for k, v in res.items()],
                       title="A2 — AG+GEMM resource mapping, MLP-1"))
    # DMA frees every SM for the GEMM: best or tied-best mapping
    assert res["AG on DMA engine"] <= min(res.values()) * 1.05
    # enough comm SMs saturate the links; more than that buys nothing
    assert res["AG pull on 20 SMs"] <= res["AG pull on 8 SMs"] * 1.10
    # push duplicates the local store work: never better than pull here
    assert res["AG push on 20 SMs"] >= res["AG pull on 20 SMs"] * 0.95
