"""Serving-engine throughput smoke: the event-driven core must stay fast.

``bench_serving.py`` checks what the simulator *says*; this bench checks
how fast it says it.  The event-driven engine (:mod:`repro.serve.engine`)
exists so fleet-scale what-if runs (hundreds of configs x 10^5..10^6
requests) stay interactive, and a regression that quietly reverts it to
per-step interpretation costs 10x wall time without failing a single
correctness test.  So CI runs the acceptance workload shape — a
100k-request chat trace against the kv-aware paged pool — and fails when
simulated requests per wall-clock second drop below the floor checked
into ``benchmarks/serving_perf.json`` (set ~5x under a warm dev-box
measurement, so only a structural regression trips it, not runner
jitter).

The run also pins the streaming-metrics contract: a million-step run
must hold O(distinct values) sample state, not O(steps) — the seed's
per-step lists were tens of MB per result.

``REPRO_FAST=1`` trims the request count (the floor still applies; the
engine's throughput is flat in n).  ``REPRO_SERVE_PERF_ROWS=PATH`` dumps
the measurement as strict JSON for
``validate_bench_json.py --schema serving-perf``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.common import FAST, emit_json, run_once
from repro.models.configs import E2E_MODELS
from repro.serve import (
    KVCacheConfig,
    ServerConfig,
    StepLatencyTable,
    generate_requests,
    resolve_latency_table,
    serve,
)

WORLD = 8
SEED = 0
CONFIG_PATH = Path(__file__).resolve().parent / "serving_perf.json"


def _config() -> dict:
    with open(CONFIG_PATH) as fh:
        return json.load(fh)


def _table(model, method: str) -> StepLatencyTable:
    table = resolve_latency_table() or StepLatencyTable(readonly=True)
    table.ensure(model, method, world=WORLD, seed=SEED)
    return table


def test_serving_engine_throughput_floor(benchmark) -> None:
    cfg = _config()
    model = {m.name: m for m in E2E_MODELS}[cfg["model"]]
    method = cfg["method"]
    n = cfg["n_requests"] // 10 if FAST else cfg["n_requests"]
    table = _table(model, method)
    reqs = generate_requests(cfg["scenario"], n, seed=SEED)
    server = ServerConfig(max_batch=cfg["max_batch"])
    kv = KVCacheConfig(block_tokens=cfg["block_tokens"],
                       pool_blocks=cfg["pool_blocks"])

    def run():
        t0 = time.perf_counter()
        res = serve(reqs, model, method, table, server,
                    world=WORLD, seed=SEED, kv=kv)
        return res, time.perf_counter() - t0

    res, wall_s = run_once(benchmark, run)
    sim_rps = n / wall_s
    steps = res.n_prefill_steps + res.n_decode_steps
    print(f"\nServing perf — {cfg['scenario']}/{method}: {n} requests, "
          f"{steps} engine steps in {wall_s:.2f}s wall "
          f"= {sim_rps:,.0f} simulated req/s (floor "
          f"{cfg['min_sim_rps']:,.0f})")
    emit_json("Serving perf", f"{cfg['scenario']}/{method}/wall", wall_s)

    rows_path = os.environ.get("REPRO_SERVE_PERF_ROWS")
    if rows_path:
        row = {"scenario": cfg["scenario"], "method": method,
               "n_requests": n, "wall_s": wall_s, "sim_rps": sim_rps,
               "min_sim_rps": cfg["min_sim_rps"]}
        with open(rows_path, "w") as fh:
            json.dump([row], fh, indent=1, sort_keys=True, allow_nan=False)

    # the run is real work, not a no-op that games the floor
    assert len(res.logs) == n
    assert all(log.finish_s is not None for log in res.logs)
    assert steps > n                    # decode dominates a chat trace

    # streaming metrics: sample state is O(distinct values), never
    # O(steps) — each series covers ~all steps but stores a tiny multiset
    assert len(res.batch_size) == steps
    for name in ("queue_depth", "batch_size", "pool_occupancy"):
        series = getattr(res, name)
        assert series.distinct <= max(1, len(series)) / 50, name
    assert res.batch_size.distinct <= cfg["max_batch"] + 1
    assert res.pool_occupancy.distinct <= cfg["pool_blocks"] + 1

    # the floor itself — a structural slowdown (per-step interpretation,
    # accidental O(n^2) state) lands far below it
    assert sim_rps >= cfg["min_sim_rps"], (
        f"serving engine regressed: {sim_rps:,.0f} simulated req/s is "
        f"below the {cfg['min_sim_rps']:,.0f} floor in {CONFIG_PATH.name}")


def test_serving_engine_recorder_overhead(benchmark) -> None:
    """An attached recorder must change nothing and cost almost nothing.

    The observability contract (:mod:`repro.obs`) on the acceptance
    workload: the recorder-on run is *bit-identical* to the plain run
    (recording is read-only tuple appends — any divergence means a hook
    perturbed the simulation), and its wall time stays within 15% of the
    plain run's — judged on the cleanest of three back-to-back
    plain/recorded pairs, so a loaded runner cannot flip the ratio.
    """
    from repro.obs import Recorder, phase_attribution

    cfg = _config()
    model = {m.name: m for m in E2E_MODELS}[cfg["model"]]
    method = cfg["method"]
    # a tenth of the floor workload: plenty of events (~10 per request)
    # to price the hooks, small enough to run twice per variant
    n = cfg["n_requests"] // 100 if FAST else cfg["n_requests"] // 10
    table = _table(model, method)
    reqs = generate_requests(cfg["scenario"], n, seed=SEED)
    server = ServerConfig(max_batch=cfg["max_batch"])
    kv = KVCacheConfig(block_tokens=cfg["block_tokens"],
                       pool_blocks=cfg["pool_blocks"])

    def run(recorder=None):
        t0 = time.perf_counter()
        res = serve(reqs, model, method, table, server,
                    world=WORLD, seed=SEED, kv=kv, recorder=recorder)
        return res, time.perf_counter() - t0

    def race():
        # back-to-back (plain, recorded) pairs: a loaded-runner window
        # inflates both halves of a pair, so the best per-pair ratio
        # isolates the hooks' cost from machine noise — only a
        # structural regression inflates every pair
        ratios = []
        plain = recorded = recorder = None
        for _ in range(3):
            plain, w_plain = run()
            recorder = Recorder()
            recorded, w_rec = run(recorder)
            ratios.append((w_rec / w_plain, w_plain, w_rec))
        return plain, recorded, recorder, ratios

    plain, recorded, recorder, ratios = run_once(benchmark, race)

    # identity: every log field and every streaming series matches
    assert recorded == plain
    assert [(log.first_token_s, log.finish_s, log.n_preemptions)
            for log in recorded.logs] == \
        [(log.first_token_s, log.finish_s, log.n_preemptions)
         for log in plain.logs]

    # the recording is real: full lifecycle coverage, not a stub
    attr = phase_attribution(recorder.recording())
    assert attr["coverage"] >= 0.99
    assert attr["counts"]["finished"] == n

    _, w_plain, w_rec = min(ratios)
    overhead = w_rec / w_plain - 1.0
    print(f"\nRecorder overhead — {n} requests: plain {w_plain:.3f}s, "
          f"recorded {w_rec:.3f}s ({overhead:+.1%}, "
          f"{len(recorder.events)} events)")
    emit_json("Serving perf", "recorder/overhead", max(0.0, overhead))
    # 15% budget with a small absolute epsilon so a sub-100ms baseline
    # doesn't turn timer noise into a flake
    assert w_rec <= w_plain * 1.15 + 0.05, (
        f"recorder overhead {overhead:+.1%} exceeds the 15% budget")
