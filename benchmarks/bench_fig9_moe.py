"""Figure 9: MoE layers on 8 ranks (dynamic mapping).

Paper shape: vLLM's fused op ~10x over cuBLAS/CUTLASS+NCCL; TileLink
beats vLLM on both parts (1.51x / 1.31x average) and by 1.14x on the full
layer; max speedup over cuBLAS+NCCL up to 20.76x.  FLUX and Async-TP do
not support MoE, hence their absence.
"""

from __future__ import annotations

from benchmarks.common import (
    FAST,
    print_relative_table,
    run_once,
    sweep_method_times,
)
from repro.bench.experiments import (
    moe_layer_builders,
    moe_part1_builders,
    moe_part2_builders,
)
from repro.models.configs import MOE_BENCHES

SHAPES = MOE_BENCHES[:2] if FAST else MOE_BENCHES


def _sweep(builders_fn) -> dict[str, list[float]]:
    return sweep_method_times(builders_fn, SHAPES)


def test_fig9_ag_group_gemm(benchmark) -> None:
    times = run_once(benchmark, lambda: _sweep(moe_part1_builders))
    gm = print_relative_table(
        "Figure 9 (left) — AG + Gather + GroupGEMM",
        [s.name for s in SHAPES], times, "cuBLAS+NCCL")
    assert gm["vLLM-Op"] > 3.0            # gather/scatter fusion is huge
    assert gm["TileLink"] > gm["vLLM-Op"]  # plus overlap on top
    assert gm["CUTLASS+NCCL"] > 1.0
    if "TileLink-tuned" in gm:            # warm cache resolved
        assert gm["TileLink-tuned"] >= gm["TileLink"] * 0.999


def test_fig9_group_gemm_rs(benchmark) -> None:
    times = run_once(benchmark, lambda: _sweep(moe_part2_builders))
    gm = print_relative_table(
        "Figure 9 (middle) — GroupGEMM + Scatter + TopkReduce + RS",
        [s.name for s in SHAPES], times, "cuBLAS+NCCL")
    assert gm["TileLink"] > gm["vLLM-Op"] > gm["CUTLASS+NCCL"] > 1.0
    if "TileLink-tuned" in gm:            # warm cache resolved
        assert gm["TileLink-tuned"] >= gm["TileLink"] * 0.999


def test_fig9_full_moe(benchmark) -> None:
    times = run_once(benchmark, lambda: _sweep(moe_layer_builders))
    gm = print_relative_table("Figure 9 (right) — full MoE layer",
                              [s.name for s in SHAPES], times, "cuBLAS+NCCL")
    max_speedup = max(
        times["cuBLAS+NCCL"][i] / times["TileLink"][i]
        for i in range(len(SHAPES)))
    print(f"\nmax TileLink speedup over cuBLAS+NCCL: {max_speedup:.2f}x "
          "(paper: up to 20.76x)")
    assert gm["TileLink"] > gm["vLLM-Op"]
    assert max_speedup > 4.0
