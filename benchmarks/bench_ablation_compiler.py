"""Ablation A3: compiler passes — pipelining benefit, consistency cost.

§4.2/§4.3 of the paper: software pipelining speeds up the tile main loop;
the memory-consistency pass must pin wait-guarded loads (correctness, see
tests/test_consistency.py for the wrong-numerics demonstration) at a
negligible performance cost.  Also measures static vs dynamic mapping
resolution overhead.
"""

from __future__ import annotations

import timeit

from benchmarks.common import run_once
from repro.bench.harness import run_builder
from repro.compiler.program import CompileOptions
from repro.kernels.ag_gemm import AgGemmConfig, ag_gemm_overlapped
from repro.mapping.dynamic import TableTileMapping
from repro.mapping.static import AffineTileMapping
from repro.models.configs import MLP_BENCHES
from repro.util.tables import format_table

SHAPE = MLP_BENCHES[0]
WORLD = 8


def _ag_time(options: CompileOptions) -> float:
    m, k = SHAPE.s, SHAPE.h
    n = SHAPE.i // WORLD

    def build(ctx) -> None:
        ctx.alloc("x", (m // WORLD, k), "float16", fill=None)
        ctx.alloc("w", (k, n), "float16", fill=None)
        ctx.alloc("y", (m, n), "float16", fill=None)
        cfg = AgGemmConfig(m=m, n=n, k=k, mode="dma")
        ag_gemm_overlapped(ctx, cfg, "x", "w", "y", options=options)

    return run_builder(build, world=WORLD)


def test_ablation_pipelining(benchmark) -> None:
    def sweep() -> dict[str, float]:
        return {
            "pipelined (3 stages) + consistency": _ag_time(CompileOptions()),
            "pipelined, consistency off": _ag_time(
                CompileOptions(enforce_consistency=False, validate=False)),
            "pipelining disabled": _ag_time(CompileOptions(num_stages=1)),
        }

    res = run_once(benchmark, sweep)
    print()
    print(format_table(["configuration", "ms"],
                       [[k, v * 1e3] for k, v in res.items()],
                       title="A3 — compiler passes on AG+GEMM (MLP-1)"))
    # pipelining overlaps loads with MMA inside the tile loop
    assert res["pipelined (3 stages) + consistency"] < \
        res["pipelining disabled"]
    # enforcing consistency costs (almost) nothing on a correct kernel
    assert res["pipelined (3 stages) + consistency"] <= \
        res["pipelined, consistency off"] * 1.05


def test_ablation_mapping_resolution(benchmark) -> None:
    """Static (affine) vs dynamic (table) mapping lookup cost."""
    static = AffineTileMapping(extent=8192, tile=128, world_size=8)
    dynamic = TableTileMapping(static.n_tiles, static.n_channels, 8)
    for t in range(static.n_tiles):
        lo, hi = static.shape_range(t)
        dynamic.fill(t, lo, hi, static.rank_of(t), static.channel_of(t))

    def measure() -> dict[str, float]:
        n = static.n_tiles
        t_static = timeit.timeit(
            lambda: [static.channel_of(t) for t in range(n)], number=50)
        t_dynamic = timeit.timeit(
            lambda: [dynamic.channel_of(t) for t in range(n)], number=50)
        return {"static(us/lookup)": t_static / (50 * n) * 1e6,
                "dynamic(us/lookup)": t_dynamic / (50 * n) * 1e6}

    res = run_once(benchmark, measure)
    print()
    print(format_table(["mapping", "us per lookup"],
                       [[k, v] for k, v in res.items()],
                       title="A3 — mapping resolution overhead"))
    # both are sub-microsecond-scale; dynamic stays within ~10x of affine
    assert res["dynamic(us/lookup)"] < res["static(us/lookup)"] * 10 + 5.0
