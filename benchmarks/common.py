"""Shared helpers for the per-figure benchmark files.

Every benchmark runs its experiment once under ``benchmark.pedantic`` (the
interesting metric is the *simulated* time printed in the paper-style
table; the wall time pytest-benchmark records is just harness runtime) and
asserts the qualitative shape of the paper's result — who wins, and by
roughly what factor.
"""

from __future__ import annotations

import os
from collections.abc import Mapping, Sequence

from repro.util.stats import geomean
from repro.util.tables import format_table

#: REPRO_FAST=1 trims sweeps for quick iteration.
FAST = os.environ.get("REPRO_FAST", "0") not in ("0", "", "false")


def print_relative_table(title: str, labels: Sequence[str],
                         times: Mapping[str, Sequence[float]],
                         baseline: str) -> dict[str, float]:
    """Print absolute + relative rows like the paper's figures.

    Returns the geomean relative performance per method (baseline == 1.0).
    """
    headers = ["workload"] + [f"{m} (ms)" for m in times] + \
        [f"{m} (rel)" for m in times]
    rows = []
    rel: dict[str, list[float]] = {m: [] for m in times}
    for i, label in enumerate(labels):
        row: list[object] = [label]
        for m in times:
            row.append(times[m][i] * 1e3)
        for m in times:
            r = times[baseline][i] / times[m][i]
            rel[m].append(r)
            row.append(r)
        rows.append(row)
    gm = {m: geomean(vals) for m, vals in rel.items()}
    rows.append(["GEOMEAN"] + ["-"] * len(times) + [gm[m] for m in times])
    print()
    print(format_table(headers, rows, title=title))
    return gm


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
