"""Shared helpers for the per-figure benchmark files.

Every benchmark runs its experiment once under ``benchmark.pedantic`` (the
interesting metric is the *simulated* time printed in the paper-style
table; the wall time pytest-benchmark records is just harness runtime) and
asserts the qualitative shape of the paper's result — who wins, and by
roughly what factor.
"""

from __future__ import annotations

import json
import os
from collections.abc import Mapping, Sequence

from repro.bench.harness import env_flag
from repro.util.stats import geomean
from repro.util.tables import format_table

#: REPRO_FAST=1 trims sweeps for quick iteration (parsed
#: case-insensitively — ``REPRO_FAST=False`` stays off).
FAST = env_flag("REPRO_FAST")


# ---------------------------------------------------------------------------
# Machine-readable result emitter (``--json PATH``)
# ---------------------------------------------------------------------------
# ``pytest benchmarks/... --json BENCH_fig8.json`` dumps every simulated
# time printed by the tables as ``{"bench", "config", "time_s"}`` rows, so
# successive PRs can diff a perf trajectory instead of scraping stdout.
# The hooks live here and are re-exported by benchmarks/conftest.py (pytest
# only discovers hooks in conftest/plugins).

_json_path: str | None = None
_json_rows: list[dict] = []


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--json", action="store", default=None, metavar="PATH",
        help="dump {bench, config, time_s} rows for every benchmark "
             "measurement to PATH as a JSON list")


def pytest_configure(config) -> None:
    global _json_path
    _json_path = config.getoption("--json", default=None)
    _json_rows.clear()


def pytest_sessionfinish(session, exitstatus) -> None:
    if _json_path is not None:
        parent = os.path.dirname(os.path.abspath(_json_path))
        os.makedirs(parent, exist_ok=True)
        with open(_json_path, "w") as fh:
            json.dump(_json_rows, fh, indent=1, sort_keys=True)


def emit_json(bench: str, config: str, time_s: float) -> None:
    """Record one measurement row (no-op unless ``--json`` was passed)."""
    if _json_path is not None:
        _json_rows.append({"bench": bench, "config": config,
                           "time_s": float(time_s)})


def print_relative_table(title: str, labels: Sequence[str],
                         times: Mapping[str, Sequence[float]],
                         baseline: str) -> dict[str, float]:
    """Print absolute + relative rows like the paper's figures.

    Returns the geomean relative performance per method (baseline == 1.0).
    """
    headers = ["workload"] + [f"{m} (ms)" for m in times] + \
        [f"{m} (rel)" for m in times]
    rows = []
    rel: dict[str, list[float]] = {m: [] for m in times}
    for i, label in enumerate(labels):
        row: list[object] = [label]
        for m in times:
            row.append(times[m][i] * 1e3)
            emit_json(title, f"{label}/{m}", times[m][i])
        for m in times:
            r = times[baseline][i] / times[m][i]
            rel[m].append(r)
            row.append(r)
        rows.append(row)
    gm = {m: geomean(vals) for m, vals in rel.items()}
    rows.append(["GEOMEAN"] + ["-"] * len(times) + [gm[m] for m in times])
    print()
    print(format_table(headers, rows, title=title))
    return gm


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def sweep_method_times(builders_fn, shapes) -> dict[str, list[float]]:
    """Per-method simulated times over a whole shape table.

    Keeps a column only when *every* shape produced it: the
    TileLink-tuned column appears by default exactly when the shipped
    warm cache (``benchmarks/warm_cache.json``) resolves the shape, so a
    partially-covered table drops the column rather than mixing tuned
    and absent cells.
    """
    from repro.bench.experiments import run_method_times

    times: dict[str, list[float]] = {}
    for shape in shapes:
        for method, t in run_method_times(builders_fn(shape)).items():
            times.setdefault(method, []).append(t)
    return {m: v for m, v in times.items() if len(v) == len(shapes)}
