"""Figure 11: end-to-end LLM forward passes, 8xH800 and 16xH800.

Paper shape: average TileLink speedup over the PyTorch baseline 1.32x on
one node (dense models ~1.20x, MoE models ~1.54x) and 1.29x on two nodes
(slightly lower — the added inter-node cost dilutes both systems
equally).

``REPRO_FIG11_TUNED=1`` opts into a third column resolving each
overlappable op through the shipped warm tuner cache
(``method="tilelink-tuned"``) — a pure lookup, so ops whose e2e shapes
the shipped sweep does not cover simply keep the paper config.
"""

from __future__ import annotations

from benchmarks.common import FAST, print_relative_table, run_once
from repro.bench.harness import env_flag
from repro.models.configs import E2E_MODELS
from repro.models.runner import e2e_model_time
from repro.util.stats import geomean

MODELS = ([m for m in E2E_MODELS if m.name in ("LLaMA2-7B", "Mixtral-8x7B")]
          if FAST else E2E_MODELS)

#: opt-in warm-cache-resolved column (label -> runner method)
COLUMNS = {"Torch": "torch", "TileLink": "tilelink"}
if env_flag("REPRO_FIG11_TUNED"):
    COLUMNS["TileLink-tuned"] = "tilelink-tuned"


def _sweep(n_nodes: int) -> dict[str, list[float]]:
    times: dict[str, list[float]] = {label: [] for label in COLUMNS}
    for model in MODELS:
        for label, method in COLUMNS.items():
            times[label].append(
                e2e_model_time(model, method, n_nodes=n_nodes))
    return times


def _speedups(times: dict[str, list[float]]) -> list[float]:
    return [t / l for t, l in zip(times["Torch"], times["TileLink"])]


def test_fig11_single_node(benchmark) -> None:
    times = run_once(benchmark, lambda: _sweep(1))
    gm = print_relative_table("Figure 11 (left) — end-to-end, 8xH800",
                              [m.name for m in MODELS], times, "Torch")
    speedups = _speedups(times)
    dense = [s for s, m in zip(speedups, MODELS) if not m.moe]
    moe = [s for s, m in zip(speedups, MODELS) if m.moe]
    print(f"\ndense geomean {geomean(dense):.2f}x (paper 1.20x); "
          f"MoE geomean {geomean(moe):.2f}x (paper 1.54x); "
          f"overall {geomean(speedups):.2f}x (paper 1.32x)"
          if moe else "")
    assert all(s > 1.0 for s in speedups)       # TileLink wins everywhere
    assert geomean(speedups) > 1.1
    if "TileLink-tuned" in times:
        # warm-resolved configs can only match or beat the paper configs
        assert all(tu <= tl * 1.001 for tu, tl in
                   zip(times["TileLink-tuned"], times["TileLink"]))
    if moe:
        # MoE models gain at least comparably to dense ones (the paper's
        # 1.54x vs 1.20x gap additionally reflects an eager-PyTorch MoE
        # baseline slower than our modelled per-expert tier)
        assert geomean(moe) > 1.1


def test_fig11_two_nodes(benchmark) -> None:
    one = _sweep(1)
    two = run_once(benchmark, lambda: _sweep(2))
    print_relative_table("Figure 11 (right) — end-to-end, 16xH800 (DP x TP)",
                         [m.name for m in MODELS], two, "Torch")
    s1 = geomean(_speedups(one))
    s2 = geomean(_speedups(two))
    print(f"\n8-GPU speedup {s1:.3f}x vs 16-GPU speedup {s2:.3f}x "
          "(paper: 1.32x vs 1.29x)")
    assert s2 > 1.0
    assert s2 <= s1 + 1e-9   # two-node speedup does not exceed one-node
