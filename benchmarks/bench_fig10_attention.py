"""Figure 10: sequence-parallel self-attention, 16k..128k context.

Paper shape: TileLink beats Torch (~5x average) and RingAttention (~2x
average) at every sequence length; the overlap ratio — (comp_only +
comm_only - overlap) / comm_only — averages 43.9%.

When the shipped warm cache (``benchmarks/warm_cache.json``) resolves,
``attention_builders`` grows a TileLink-tuned column by default — the
Figure-10 winners run straight from the cache with zero simulation at
bench time, exactly like the Figure-8/9 tables.

``REPRO_FIG10_TRACE=PATH`` additionally re-runs each shape's TileLink
kernel (first sequence length) with machine tracing on and exports the
per-rank timeline as Chrome trace-event JSON via :mod:`repro.obs` —
one file per shape (``PATH`` suffixed with the shape name) that makes
the overlap ratio *visible* in ui.perfetto.dev.
"""

from __future__ import annotations

import os
from pathlib import Path

from benchmarks.common import FAST, print_relative_table, run_once
from repro.bench.experiments import (
    attention_builders,
    attention_overlap_ratio,
    run_method_times,
)
from repro.models.configs import ATTENTION_BENCHES
from repro.util.stats import geomean


def _sweep(shape) -> tuple[dict[str, list[float]], list[float], list[str]]:
    seqs = shape.seq_lens[:2] if FAST else shape.seq_lens
    times: dict[str, list[float]] = {}
    ratios: list[float] = []
    for seq in seqs:
        res = run_method_times(attention_builders(shape, seq))
        for m, t in res.items():
            times.setdefault(m, []).append(t)
        ratios.append(attention_overlap_ratio(shape, seq))
    labels = [f"{seq // 1024}k" for seq in seqs]
    # keep a column only when every seq produced it (the tuned column
    # appears exactly when the warm cache covers the shape)
    times = {m: v for m, v in times.items() if len(v) == len(labels)}
    return times, ratios, labels


def _check(shape, benchmark) -> None:
    times, ratios, labels = run_once(benchmark, lambda: _sweep(shape))
    gm = print_relative_table(
        f"Figure 10 — {shape.name} ({shape.heads} heads, "
        f"head dim {shape.head_dim})", labels, times, "Torch")
    print("overlap ratio per seq:",
          {l: round(r, 3) for l, r in zip(labels, ratios)},
          f"(geomean {geomean([max(r, 1e-9) for r in ratios]):.3f}; "
          "paper average 0.439)")
    # TileLink wins against both baselines at every length
    for i in range(len(labels)):
        assert times["TileLink"][i] < times["RingAttn"][i]
        assert times["TileLink"][i] < times["Torch"][i]
    assert gm["TileLink"] > 2.5   # ~5x in the paper
    assert gm["TileLink"] / gm["RingAttn"] > 1.2   # ~2x in the paper
    # communication is meaningfully hidden
    assert all(r > 0.25 for r in ratios)
    # the warm cache makes the tuned column the default, never slower
    # than the paper-config TileLink column
    if "TileLink-tuned" in times:
        for i in range(len(labels)):
            assert times["TileLink-tuned"][i] <= times["TileLink"][i] * 1.001

    trace_path = os.environ.get("REPRO_FIG10_TRACE")
    if trace_path:
        # re-run the TileLink kernel traced and export the per-rank
        # timeline through the one shared exporter (repro.obs), one
        # file per shape
        from repro.bench.harness import run_builder_traced
        from repro.obs import sim_recording, write_trace

        seq = shape.seq_lens[0]
        total, ctx = run_builder_traced(
            attention_builders(shape, seq)["TileLink"])
        p = Path(trace_path)
        out = p.with_name(f"{p.stem}-{shape.name}{p.suffix}")
        write_trace(out, sim_recording(ctx.machine.trace, meta={
            "kernel": "attention", "shape": shape.name,
            "seq_len": seq, "total_s": total}))
        print(f"fig10 {shape.name} perfetto trace -> {out}")


def test_fig10_attn1(benchmark) -> None:
    _check(ATTENTION_BENCHES[0], benchmark)


def test_fig10_attn2(benchmark) -> None:
    _check(ATTENTION_BENCHES[1], benchmark)
