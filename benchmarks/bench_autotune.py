"""Autotuning: tuned configs vs the paper's hand-picked configs (MLP-1).

The tuner searches the §3.1 decoupled design space (tile sizes, comm
tiles, comm-SM count, resource mapping) with the cost-model pruner
discarding dominated candidates before simulation.  Expected shape of the
result: the tuned config is never worse than the shipped default (the
default seeds the incumbent), the pruner kills at least half of the
AG+GEMM candidate space, and for GEMM+RS the search finds a strictly
better compute tile than the paper's 128x128.
"""

from __future__ import annotations

from benchmarks.common import emit_json, run_once
from repro.bench.experiments import tuned_vs_paper
from repro.models.configs import MLP_BENCHES
from repro.util.tables import format_table

SHAPE = MLP_BENCHES[0]
WORLD = 8


def _report(title: str, res: dict) -> None:
    tr = res["result"]
    print()
    print(format_table(
        ["column", "value"],
        [["paper config (ms)", res["paper_time"] * 1e3],
         ["tuned config (ms)", res["tuned_time"] * 1e3],
         ["speedup", res["speedup"]],
         ["candidates", tr.n_candidates],
         ["pruned by cost model", tr.n_pruned],
         ["pruned dynamically", tr.n_pruned_dynamic],
         ["simulated", tr.n_simulated],
         ["winner", str(res["config"])]],
        title=title))
    emit_json(title, "paper", res["paper_time"])
    emit_json(title, "tuned", res["tuned_time"])


def test_autotune_ag_gemm(benchmark) -> None:
    res = run_once(benchmark,
                   lambda: tuned_vs_paper(SHAPE, kernel="ag_gemm",
                                          world=WORLD))
    _report("Autotune — AG+GEMM, MLP-1", res)
    tr = res["result"]
    assert res["tuned_time"] <= res["paper_time"]
    # the analytic pre-filter must carry its weight: at least half of the
    # candidate space never reaches the simulator
    assert tr.prune_fraction >= 0.5
    assert tr.n_simulated < tr.n_candidates


def test_autotune_gemm_rs(benchmark) -> None:
    res = run_once(benchmark,
                   lambda: tuned_vs_paper(SHAPE, kernel="gemm_rs",
                                          world=WORLD))
    _report("Autotune — GEMM+RS, MLP-1", res)
    assert res["tuned_time"] <= res["paper_time"]
    # the decoupled space holds a strictly better point than the paper's
    # hand-picked compute tile on this shape
    assert res["tuned_time"] < res["paper_time"]
