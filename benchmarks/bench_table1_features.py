"""Table 1: feature comparison of overlapping systems.

Qualitative in the paper; reproduced as a generated capability matrix that
is checked against what this library actually implements (the TileLink row
must be backed by real entry points).
"""

from __future__ import annotations

from benchmarks.common import run_once
from repro.util.tables import format_table

FEATURES = [
    # name, compiles?, method, primitive granularity
    ("CoCoNet", "Yes", "Fusion", "No"),
    ("Dist-Einsum", "Yes", "Decompose", "operator-centric"),
    ("Centauri", "No", "Decompose", "operator-centric"),
    ("FLUX", "No", "Fusion", "No"),
    ("Async-Torch", "No", "Decompose", "operator-centric"),
    ("TileLink", "Yes", "Fusion", "tile-centric"),
]


def test_table1_feature_matrix(benchmark) -> None:
    def build() -> str:
        return format_table(
            ["Name", "Compile", "Method", "Primitive"],
            FEATURES, title="Table 1 — feature comparison")

    table = run_once(benchmark, build)
    print()
    print(table)

    # the TileLink row is backed by the implementation:
    # "Compile=Yes" — a real frontend+backend exist
    from repro.compiler.program import compile_kernel  # noqa: F401
    from repro.lang.frontend import compile_function  # noqa: F401
    # "Method=Fusion" — fused kernels with on-device barriers exist
    from repro.kernels.gemm_rs import _gemm_rs_ring  # noqa: F401
    # "Primitive=tile-centric" — Table 3's primitives exist
    from repro.lang import tl

    for prim in ("producer_tile_notify", "consumer_tile_wait",
                 "peer_tile_notify", "peer_tile_wait", "tile_push_data",
                 "tile_pull_data"):
        assert prim in tl.PRIMITIVES
