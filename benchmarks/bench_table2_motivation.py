"""Table 2 (motivational example): TP MLP-1 parts under four techniques.

Paper values (8xH800): AG+GEMM — Non-Overlap 0.676 ms, Decomposition
1.301 ms, Fusion (FLUX) 0.504 ms, TileLink 0.505 ms; GEMM+RS — 0.541 /
1.443 / 0.610 / 0.504 ms.  Expected shape: decomposition *slower* than
non-overlap; FLUX ~= TileLink on AG+GEMM; TileLink strictly best on
GEMM+RS.  The paper also contrasts ~2,000 lines of CUDA (FLUX) with ~200
lines of Python (TileLink) — reproduced here by counting the kernel-zoo
sources.
"""

from __future__ import annotations

import inspect

from benchmarks.common import print_relative_table, run_once
from repro.bench.experiments import (
    ag_gemm_builders,
    gemm_rs_builders,
    run_method_times,
)
from repro.models.configs import MLP_BENCHES


def _run() -> dict[str, dict[str, float]]:
    shape = MLP_BENCHES[0]  # MLP-1 == the LLaMA-7B motivational config
    # tuned=False: the paper's Table 2 is exactly these four techniques;
    # the warm-cache auto column belongs to the Figure-8/9 tables
    return {
        "AG+GEMM": run_method_times(ag_gemm_builders(shape, tuned=False)),
        "GEMM+RS": run_method_times(gemm_rs_builders(shape, tuned=False)),
    }


def test_table2_motivation(benchmark) -> None:
    results = run_once(benchmark, _run)
    methods = list(results["AG+GEMM"].keys())
    times = {m: [results[p][m] for p in ("AG+GEMM", "GEMM+RS")]
             for m in methods}
    print_relative_table("Table 2 — motivational example (MLP-1, TP=8)",
                         ["AG+GEMM", "GEMM+RS"], times, "cuBLAS+NCCL")

    ag, rs = results["AG+GEMM"], results["GEMM+RS"]
    # decomposition loses to non-overlap on both parts
    assert ag["Async-TP"] > ag["cuBLAS+NCCL"]
    assert rs["Async-TP"] > rs["cuBLAS+NCCL"]
    # fusion wins AG+GEMM; TileLink within 10% of FLUX
    assert ag["FLUX"] < ag["cuBLAS+NCCL"]
    assert ag["TileLink"] < ag["cuBLAS+NCCL"]
    assert ag["TileLink"] / ag["FLUX"] < 1.10
    # TileLink strictly best on GEMM+RS
    assert rs["TileLink"] < min(rs["cuBLAS+NCCL"], rs["Async-TP"], rs["FLUX"])


def test_table2_lines_of_code(benchmark) -> None:
    """TileLink's kernels take ~200 lines of Python per workload."""
    from repro.kernels import ag_gemm, gemm_rs

    def count() -> dict[str, int]:
        return {
            "ag_gemm": len(inspect.getsource(ag_gemm).splitlines()),
            "gemm_rs": len(inspect.getsource(gemm_rs).splitlines()),
        }

    loc = run_once(benchmark, count)
    print(f"\nTable 2 (LoC): ag_gemm={loc['ag_gemm']} lines, "
          f"gemm_rs={loc['gemm_rs']} lines of Python "
          "(FLUX: ~2,000 lines of CUDA per workload)")
    assert loc["ag_gemm"] < 600 and loc["gemm_rs"] < 600
