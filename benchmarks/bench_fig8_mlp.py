"""Figure 8: MLP layers (AG+GEMM, GEMM+RS, full layer) on 8 ranks.

Paper geomeans over MLP-1..6 (relative to cuBLAS+NCCL): AG+GEMM — FLUX
1.34x, TileLink 1.27x, Async-TP < 1; GEMM+RS — TileLink 1.25x (2.22x over
Async-TP, 1.28x over FLUX); full layer — TileLink ~1.24x, ~101% of FLUX.
"""

from __future__ import annotations

from benchmarks.common import (
    FAST,
    print_relative_table,
    run_once,
    sweep_method_times,
)
from repro.bench.experiments import (
    ag_gemm_builders,
    gemm_rs_builders,
    mlp_builders,
)
from repro.models.configs import MLP_BENCHES

SHAPES = MLP_BENCHES[:2] if FAST else MLP_BENCHES


def _sweep(builders_fn) -> dict[str, list[float]]:
    return sweep_method_times(builders_fn, SHAPES)


def test_fig8_ag_gemm(benchmark) -> None:
    times = run_once(benchmark, lambda: _sweep(ag_gemm_builders))
    gm = print_relative_table("Figure 8 (left) — AG+GEMM",
                              [s.name for s in SHAPES], times, "cuBLAS+NCCL")
    assert gm["Async-TP"] < 1.0           # decomposition produces no speedup
    assert gm["FLUX"] > 1.15              # fusion wins
    assert gm["TileLink"] > 1.15
    assert gm["TileLink"] / gm["FLUX"] > 0.90   # within ~10% of FLUX
    if "TileLink-tuned" in gm:                  # warm cache resolved
        assert gm["TileLink-tuned"] >= gm["TileLink"] * 0.999


def test_fig8_gemm_rs(benchmark) -> None:
    times = run_once(benchmark, lambda: _sweep(gemm_rs_builders))
    gm = print_relative_table("Figure 8 (middle) — GEMM+RS",
                              [s.name for s in SHAPES], times, "cuBLAS+NCCL")
    assert gm["TileLink"] > 1.05          # best over non-overlap
    assert gm["TileLink"] > gm["FLUX"]    # decoupled beats coupled fusion
    if "TileLink-tuned" in gm:            # warm cache resolved
        assert gm["TileLink-tuned"] >= gm["TileLink"] * 0.999
    assert gm["TileLink"] / gm["Async-TP"] > 1.8   # ~2.2x in the paper


def test_fig8_full_mlp(benchmark) -> None:
    times = run_once(benchmark, lambda: _sweep(mlp_builders))
    gm = print_relative_table("Figure 8 (right) — full MLP layer",
                              [s.name for s in SHAPES], times, "cuBLAS+NCCL")
    assert gm["TileLink"] > 1.1
    assert gm["Async-TP"] < 1.0
    assert gm["TileLink"] / gm["FLUX"] > 0.95   # comparable-or-better
