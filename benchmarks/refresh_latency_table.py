"""Regenerate or staleness-check the shipped serving latency table.

``benchmarks/latency_table.json`` is a checked-in
:class:`repro.serve.latency.StepLatencyTable` holding the per-layer
step-latency ladders the serving benchmark interpolates: one entry per
(model, method) over the serving roster — the Figure-11 FAST pair
(LLaMA2-7B dense, Mixtral-8x7B MoE) x (torch, tilelink, tilelink-tuned)
at world=8 on H800.  With the table shipped, ``bench_serving.py`` prices
millions of requests without a single ``build_layer`` simulation.

Entry keys embed the architecture fields, the method, the world size,
the seed and ``HardwareSpec.fingerprint()`` — so a change to the
hardware model (or the roster) silently orphans the shipped entries.
``--check`` recomputes every expected key from the *current* code and
fails when the file drifted; CI runs it so such a change cannot land
without a refresh:

    python benchmarks/refresh_latency_table.py --check      # CI tripwire
    python benchmarks/refresh_latency_table.py              # regenerate

A cold refresh simulates ``len(DEFAULT_BUCKETS) x
len(DEFAULT_CTX_BUCKETS)`` (= 8 x 4) ``build_layer`` points per
(model, method) — the context-bucket axis prices decode as a function
of resident KV — which takes a few minutes of wall time; ``--workers N``
shards the independent cell simulations over forked processes and feeds
the values back through ``ensure(simulate=...)`` in serial order, so the
written file is byte-identical to a serial refresh.  ``--check`` also
fails when either bucket ladder drifted from the defaults.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.config import H800
from repro.models.configs import E2E_MODELS, ModelConfig
from repro.registry import serve_method_names
from repro.serve.latency import (
    DEFAULT_BUCKETS,
    DEFAULT_CTX_BUCKETS,
    StepLatencyTable,
    entry_key,
)

WORLD = 8
SEED = 0
#: the shipped method axis — base methods plus any registered serving
#: method marked ``shipped=True`` (experimental methods stay out of the
#: checked-in table until promoted)
METHODS = serve_method_names(shipped_only=True)
#: the serving roster: one dense + one MoE model (the Figure-11 FAST pair)
MODEL_NAMES = ("LLaMA2-7B", "Mixtral-8x7B")
DEFAULT_PATH = Path(__file__).resolve().parent / "latency_table.json"


def serving_models() -> list[ModelConfig]:
    by_name = {m.name: m for m in E2E_MODELS}
    return [by_name[n] for n in MODEL_NAMES]


def expected_entries() -> list[tuple[str, ModelConfig, str]]:
    """(label, model, method) triples the table must cover, exactly."""
    return [(f"{model.name}/{method}", model, method)
            for model in serving_models() for method in METHODS]


def expected_keys() -> dict[str, str]:
    return {label: entry_key(model, method, WORLD, H800, SEED)
            for label, model, method in expected_entries()}


def check(path: Path) -> int:
    if not path.is_file():
        print(f"STALE: {path} does not exist — run "
              f"`python benchmarks/refresh_latency_table.py`",
              file=sys.stderr)
        return 1
    table = StepLatencyTable(path, readonly=True)
    expected = expected_keys()
    missing = sorted(label for label, key in expected.items()
                     if key not in table.keys())
    extra = sorted(set(table.keys()) - set(expected.values()))
    stale_buckets = sorted(
        label for label, key in expected.items()
        if key in table.keys()
        and (list((table.entry(key) or {}).get("buckets", ())) !=
             list(DEFAULT_BUCKETS)
             or list((table.entry(key) or {}).get("ctx_buckets", ())) !=
             list(DEFAULT_CTX_BUCKETS)))
    if missing or extra or stale_buckets:
        for label in missing:
            print(f"STALE: no entry for {label} (spec fingerprint or "
                  f"roster changed?)", file=sys.stderr)
        for key in extra:
            print(f"STALE: orphaned entry {key}", file=sys.stderr)
        for label in stale_buckets:
            print(f"STALE: {label} bucket axis is stale — built on a "
                  f"different ladder than {list(DEFAULT_BUCKETS)} x "
                  f"{list(DEFAULT_CTX_BUCKETS)}", file=sys.stderr)
        print(f"STALE: refresh with "
              f"`python benchmarks/refresh_latency_table.py`",
              file=sys.stderr)
        return 1
    print(f"OK: {path} — {len(expected)} entries match the current "
          f"roster/spec fingerprints")
    return 0


def _simulate_cells(entries, workers: int):
    """Simulate every (entry, ctx, bucket) cell across ``workers``
    forked processes; returns the values in exactly the order a serial
    :meth:`StepLatencyTable.ensure` sweep would compute them (entry
    order, context rows outer, token buckets inner).

    Each cell is one independent ``layer_time`` simulation, so the grid
    fans out at cell grain; the parent then replays the values into
    ``ensure(simulate=...)`` in serial insertion order, which makes the
    written JSON byte-identical to a ``--workers 1`` run.
    """
    from repro.models.runner import layer_time
    from repro.util.forkpool import fork_map

    # mirror ensure()'s ladder normalization so job order matches its
    # grid loops exactly
    buckets = sorted(set(int(b) for b in DEFAULT_BUCKETS))
    ctx_buckets = sorted(set(int(c) for c in DEFAULT_CTX_BUCKETS))
    jobs = []
    for _label, model, method in entries:
        for c in ctx_buckets:
            for b in buckets:
                variant = model.with_tokens(b)
                if c > 0:
                    variant = variant.with_context(c)
                jobs.append((variant, method))

    def cell(index: int) -> float:
        variant, method = jobs[index]
        return layer_time(variant, method, world=WORLD, seed=SEED, spec=H800)

    return fork_map(cell, len(jobs), workers)


def refresh(path: Path, workers: int = 1) -> int:
    entries = expected_entries()
    print(f"Refreshing {path}: {len(entries)} entries x "
          f"{len(DEFAULT_BUCKETS)} token buckets x "
          f"{len(DEFAULT_CTX_BUCKETS)} context buckets (world={WORLD}) ...")
    t0 = time.time()
    simulate = None
    if workers > 1:
        n_cells = (len(entries) * len(DEFAULT_BUCKETS)
                   * len(DEFAULT_CTX_BUCKETS))
        print(f"  simulating {n_cells} cells over {workers} workers ...")
        values = iter(_simulate_cells(entries, workers))

        def simulate(*_args, **_kwargs):
            return next(values)

    # build into a fresh sibling file, then atomically replace the
    # target: a refreshed table contains exactly the expected entries.
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=path.name,
                               suffix=".tmp")
    os.close(fd)
    os.unlink(tmp)          # the table wants to create the file itself
    try:
        table = StepLatencyTable(tmp)
        for label, model, method in entries:
            print(f"  {label} ...")
            table.ensure(model, method, world=WORLD, seed=SEED,
                         buckets=DEFAULT_BUCKETS,
                         ctx_buckets=DEFAULT_CTX_BUCKETS,
                         simulate=simulate)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    print(f"{len(entries) * len(DEFAULT_BUCKETS) * len(DEFAULT_CTX_BUCKETS)}"
          f" simulations, {time.time() - t0:.1f}s wall -> {path}")
    return check(path)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="verify the shipped table against the current "
                             "roster/spec instead of regenerating")
    parser.add_argument("--out", type=Path, default=DEFAULT_PATH,
                        help=f"table file to write/check "
                             f"(default: {DEFAULT_PATH})")
    parser.add_argument("--workers", type=int, default=1,
                        help="fan the per-cell simulations out over N "
                             "forked processes (the written table is "
                             "byte-identical to a serial refresh)")
    args = parser.parse_args(argv)
    if args.check:
        return check(args.out)
    return refresh(args.out, workers=args.workers)


if __name__ == "__main__":
    sys.exit(main())
