"""Regenerate or staleness-check the shipped tuner warm cache.

``benchmarks/warm_cache.json`` is a checked-in :class:`repro.tuner.TuneCache`
file holding the exhaustive-search winners for the Figure-8 MLP,
Table-4 MoE and Figure-10 attention shape tables (world=8, H800,
``preset="small"``).  When it resolves, the ``*_builders`` in
:mod:`repro.bench.experiments` default to ``tuned=True`` and the
Figure-8/9/10 tables grow a TileLink-tuned column at zero simulation
cost — every autotune call is a warm hit.

Cache keys embed the hardware-spec and search-space fingerprints, so any
change to a kernel's design space (or to ``HardwareSpec``) silently
orphans the shipped entries.  ``--check`` recomputes every expected key
from the *current* code and fails when the file drifted; CI runs it so a
space change cannot land without a refresh:

    python benchmarks/refresh_warm_cache.py --check      # CI tripwire
    python benchmarks/refresh_warm_cache.py --workers 4  # regenerate
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.bench.experiments import registry_sweep_tasks
from repro.config import H800
from repro.tuner import TuneCache, sweep, task_cache_key

WORLD = 8
DEFAULT_PATH = Path(__file__).resolve().parent / "warm_cache.json"


def expected_tasks():
    """The task table the warm cache must cover (and nothing else),
    derived from the kernel-family registry: every family with a
    ``warm_tasks`` hook contributes its shape table (Figure-8 MLP,
    Table-4 MoE and Figure-10 attention shapes)."""
    return registry_sweep_tasks(world=WORLD, spec=H800)


def expected_keys() -> dict[str, str]:
    """name -> current full cache key, recomputed from the live spaces."""
    return {name: task_cache_key(task, world=WORLD, spec=H800)
            for name, task in expected_tasks()}


def check(path: Path) -> int:
    if not path.is_file():
        print(f"STALE: {path} does not exist — run "
              f"`python benchmarks/refresh_warm_cache.py`", file=sys.stderr)
        return 1
    cache = TuneCache(path, readonly=True)
    expected = expected_keys()
    missing = sorted(name for name, key in expected.items()
                     if key not in cache)
    extra = sorted(set(cache.keys()) - set(expected.values()))
    if missing or extra:
        for name in missing:
            print(f"STALE: no entry for {name} (space/spec fingerprint "
                  f"changed?)", file=sys.stderr)
        for key in extra:
            print(f"STALE: orphaned entry {key}", file=sys.stderr)
        print(f"STALE: refresh with `python benchmarks/refresh_warm_cache.py`",
              file=sys.stderr)
        return 1
    print(f"OK: {path} — {len(expected)} entries match the current space "
          f"fingerprints")
    return 0


def refresh(path: Path, workers: int) -> int:
    tasks = expected_tasks()
    print(f"Refreshing {path}: {len(tasks)} tuning tasks "
          f"(world={WORLD}, workers={workers}) ...")
    # sweep into a fresh sibling file, then atomically replace the target:
    # a refreshed cache contains exactly the expected entries, never a
    # merge with whatever was shipped before.
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=path.name,
                               suffix=".tmp")
    os.close(fd)
    os.unlink(tmp)          # TuneCache wants to create the file itself
    try:
        t0 = time.time()
        report = sweep(tasks, world=WORLD, cache=TuneCache(tmp),
                       workers=workers, progress=print)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    finally:
        # drop the flock sidecar the temp cache left behind
        if os.path.exists(tmp + ".lock"):
            os.unlink(tmp + ".lock")
    print()
    print(report.format("Warm-cache refresh"))
    print(f"\n{report.n_simulated} simulations, {time.time() - t0:.1f}s "
          f"wall -> {path}")
    return check(path)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="verify the shipped cache against the current "
                             "space fingerprints instead of regenerating")
    parser.add_argument("--out", type=Path, default=DEFAULT_PATH,
                        help=f"cache file to write/check "
                             f"(default: {DEFAULT_PATH})")
    parser.add_argument("--workers", type=int,
                        default=max(1, os.cpu_count() or 1),
                        help="sweep process-pool width (default: cpu count)")
    args = parser.parse_args(argv)
    if args.check:
        return check(args.out)
    return refresh(args.out, args.workers)


if __name__ == "__main__":
    sys.exit(main())
